#include "flash/flash_device.h"

#include <cstdio>
#include <cstdlib>
#include <string>

namespace flashdb::flash {

FlashDevice::ConfinementScope::ConfinementScope(const FlashDevice* dev)
    : dev_(dev) {
  if (dev_->in_operation_.exchange(true, std::memory_order_acquire)) {
    std::fprintf(stderr,
                 "FlashDevice: concurrent operations on one chip -- the "
                 "shard-confinement contract is violated (drive each shard "
                 "from its own ShardExecutor worker)\n");
    std::abort();
  }
}

FlashDevice::FlashDevice(const FlashConfig& config) : config_(config) {
  const auto& g = config_.geometry;
  if (g.meta_blocks >= g.num_blocks) {
    std::fprintf(stderr,
                 "FlashDevice: meta_blocks (%u) must leave at least one data "
                 "block (num_blocks %u)\n",
                 g.meta_blocks, g.num_blocks);
    std::abort();
  }
  data_.assign(static_cast<size_t>(g.total_pages()) * g.data_size, 0xFF);
  spare_.assign(static_cast<size_t>(g.total_pages()) * g.spare_size, 0xFF);
  data_programs_.assign(g.total_pages(), 0);
  spare_programs_.assign(g.total_pages(), 0);
  block_frontier_.assign(g.num_blocks, -1);
  stats_.block_erase_counts.assign(g.num_blocks, 0);
}

Status FlashDevice::CheckAddr(PhysAddr addr) const {
  if (addr >= config_.geometry.total_pages()) {
    return Status::InvalidArgument("physical address out of range: " +
                                   std::to_string(addr));
  }
  return Status::OK();
}

void FlashDevice::Charge(OpKind kind) {
  uint64_t us = 0;
  OpCounters& total = stats_.total;
  OpCounters& cat = stats_.by_category[static_cast<int>(category_)];
  switch (kind) {
    case OpKind::kRead:
      us = config_.timing.read_us;
      total.reads++;
      total.read_us += us;
      cat.reads++;
      cat.read_us += us;
      break;
    case OpKind::kProgram:
    case OpKind::kProgramSpare:
      us = config_.timing.write_us;
      total.writes++;
      total.write_us += us;
      cat.writes++;
      cat.write_us += us;
      break;
    case OpKind::kErase:
      us = config_.timing.erase_us;
      total.erases++;
      total.erase_us += us;
      cat.erases++;
      cat.erase_us += us;
      break;
  }
  clock_.Advance(us);
}

Status FlashDevice::ReadPage(PhysAddr addr, MutBytes data, MutBytes spare) {
  ConfinementScope confined(this);
  FLASHDB_RETURN_IF_ERROR(CheckAddr(addr));
  const auto& g = config_.geometry;
  if (!data.empty() && data.size() != g.data_size) {
    return Status::InvalidArgument("data buffer must be exactly one page");
  }
  if (!spare.empty() && spare.size() != g.spare_size) {
    return Status::InvalidArgument("spare buffer must be exactly spare_size");
  }
  Charge(OpKind::kRead);
  if (!data.empty()) {
    CopyBytes(data, ConstBytes(data_.data() + static_cast<size_t>(addr) * g.data_size,
                               g.data_size));
  }
  if (!spare.empty()) {
    CopyBytes(spare,
              ConstBytes(spare_.data() + static_cast<size_t>(addr) * g.spare_size,
                         g.spare_size));
  }
  return Status::OK();
}

Status FlashDevice::ProgramCells(uint8_t* dst, ConstBytes src, PhysAddr addr,
                                 const char* area, bool strict) {
  if (strict && config_.strict_bit_semantics) {
    for (size_t i = 0; i < src.size(); ++i) {
      // A program may only clear bits: every bit set in src must already be
      // set in the cells, i.e. src & ~dst must have no bit that is 1 in src
      // but 0 in dst.
      if ((src[i] & ~dst[i]) != 0) {
        return Status::FlashConstraint(
            std::string("program attempts 0->1 transition in ") + area +
            " area of page " + std::to_string(addr));
      }
    }
  }
  for (size_t i = 0; i < src.size(); ++i) dst[i] &= src[i];
  return Status::OK();
}

Status FlashDevice::ProgramImpl(PhysAddr addr, ConstBytes data,
                                ConstBytes spare, bool strict) {
  ConfinementScope confined(this);
  FLASHDB_RETURN_IF_ERROR(CheckAddr(addr));
  const auto& g = config_.geometry;
  if (data.empty() && spare.empty()) {
    return Status::InvalidArgument("nothing to program");
  }
  if (!data.empty() && data.size() != g.data_size) {
    return Status::InvalidArgument("data image must be exactly one page");
  }
  if (!spare.empty() && spare.size() != g.spare_size) {
    return Status::InvalidArgument("spare image must be exactly spare_size");
  }
  if (!data.empty() &&
      data_programs_[addr] >= config_.max_data_programs) {
    return Status::FlashConstraint("data partial-program budget exhausted at " +
                                   std::to_string(addr));
  }
  if (!spare.empty() &&
      spare_programs_[addr] >= config_.max_spare_programs) {
    return Status::FlashConstraint(
        "spare partial-program budget exhausted at " + std::to_string(addr));
  }
  const uint32_t block = BlockOf(addr);
  const int32_t page = static_cast<int32_t>(PageInBlock(addr));
  const bool first_program = (data_programs_[addr] == 0 && spare_programs_[addr] == 0);
  if (config_.enforce_sequential_program && first_program &&
      page < block_frontier_[block]) {
    return Status::FlashConstraint(
        "non-sequential first program: page " + std::to_string(page) +
        " behind frontier " + std::to_string(block_frontier_[block]) +
        " in block " + std::to_string(block));
  }

  if (fault_injector_ != nullptr) {
    fault_injector_->BeforeMutation(
        data.empty() ? OpKind::kProgramSpare : OpKind::kProgram, addr);
  }

  if (!data.empty()) {
    FLASHDB_RETURN_IF_ERROR(ProgramCells(
        data_.data() + static_cast<size_t>(addr) * g.data_size, data, addr,
        "data", strict));
    data_programs_[addr]++;
  }
  if (!spare.empty()) {
    FLASHDB_RETURN_IF_ERROR(ProgramCells(
        spare_.data() + static_cast<size_t>(addr) * g.spare_size, spare, addr,
        "spare", strict));
    spare_programs_[addr]++;
  }
  if (first_program && page > block_frontier_[block]) {
    block_frontier_[block] = page;
  }
  Charge(data.empty() ? OpKind::kProgramSpare : OpKind::kProgram);

  if (fault_injector_ != nullptr) {
    fault_injector_->AfterMutation(
        data.empty() ? OpKind::kProgramSpare : OpKind::kProgram, addr);
  }
  return Status::OK();
}

Status FlashDevice::EraseBlock(uint32_t block) {
  ConfinementScope confined(this);
  const auto& g = config_.geometry;
  if (block >= g.num_blocks) {
    return Status::InvalidArgument("block out of range: " +
                                   std::to_string(block));
  }
  if (fault_injector_ != nullptr) {
    fault_injector_->BeforeMutation(OpKind::kErase, AddrOf(block, 0));
  }
  const PhysAddr first = AddrOf(block, 0);
  std::fill(data_.begin() + static_cast<size_t>(first) * g.data_size,
            data_.begin() + static_cast<size_t>(first + g.pages_per_block) *
                                g.data_size,
            0xFF);
  std::fill(spare_.begin() + static_cast<size_t>(first) * g.spare_size,
            spare_.begin() + static_cast<size_t>(first + g.pages_per_block) *
                                 g.spare_size,
            0xFF);
  for (uint32_t p = 0; p < g.pages_per_block; ++p) {
    data_programs_[first + p] = 0;
    spare_programs_[first + p] = 0;
  }
  block_frontier_[block] = -1;
  stats_.block_erase_counts[block]++;
  Charge(OpKind::kErase);
  if (fault_injector_ != nullptr) {
    fault_injector_->AfterMutation(OpKind::kErase, first);
  }
  return Status::OK();
}

bool FlashDevice::IsErased(PhysAddr addr) const {
  return data_programs_[addr] == 0 && spare_programs_[addr] == 0;
}

uint32_t FlashDevice::DataProgramCount(PhysAddr addr) const {
  return data_programs_[addr];
}

uint32_t FlashDevice::SpareProgramCount(PhysAddr addr) const {
  return spare_programs_[addr];
}

void FlashDevice::ResetAccounting() {
  stats_.Reset();
  clock_.Reset();
}

ConstBytes FlashDevice::RawData(PhysAddr addr) const {
  const auto& g = config_.geometry;
  return ConstBytes(data_.data() + static_cast<size_t>(addr) * g.data_size,
                    g.data_size);
}

ConstBytes FlashDevice::RawSpare(PhysAddr addr) const {
  const auto& g = config_.geometry;
  return ConstBytes(spare_.data() + static_cast<size_t>(addr) * g.spare_size,
                    g.spare_size);
}

}  // namespace flashdb::flash
