#include "flash/flash_device.h"

#include <cstdio>
#include <cstdlib>
#include <string>

#include "obs/trace_recorder.h"

namespace flashdb::flash {

namespace {

/// Trace category of one array command.
obs::TraceCat TraceCatOf(OpKind kind, bool cache_chain) {
  switch (kind) {
    case OpKind::kRead:
      return obs::TraceCat::kFlashRead;
    case OpKind::kProgram:
      return cache_chain ? obs::TraceCat::kFlashCacheProgram
                         : obs::TraceCat::kFlashProgram;
    case OpKind::kProgramSpare:
      return obs::TraceCat::kFlashProgramSpare;
    case OpKind::kErase:
      return obs::TraceCat::kFlashErase;
  }
  return obs::TraceCat::kFlashRead;
}

}  // namespace

FlashDevice::ConfinementScope::ConfinementScope(const FlashDevice* dev)
    : dev_(dev) {
  if (dev_->in_operation_.exchange(true, std::memory_order_acquire)) {
    std::fprintf(stderr,
                 "FlashDevice: concurrent operations on one chip -- the "
                 "shard-confinement contract is violated (drive each shard "
                 "from its own ShardExecutor worker)\n");
    std::abort();
  }
}

FlashDevice::FlashDevice(const FlashConfig& config) : config_(config) {
  const auto& g = config_.geometry;
  if (g.meta_blocks >= g.num_blocks) {
    std::fprintf(stderr,
                 "FlashDevice: meta_blocks (%u) must leave at least one data "
                 "block (num_blocks %u)\n",
                 g.meta_blocks, g.num_blocks);
    std::abort();
  }
  if (g.dies_per_chip == 0 || g.planes_per_die == 0) {
    std::fprintf(stderr,
                 "FlashDevice: dies_per_chip and planes_per_die must be >= 1\n");
    std::abort();
  }
  if (g.meta_blocks % g.planes_per_chip() != 0) {
    std::fprintf(stderr,
                 "FlashDevice: meta_blocks (%u) must be a whole plane stripe "
                 "(multiple of %u) -- use FlashConfig::WithMetaBlocks\n",
                 g.meta_blocks, g.planes_per_chip());
    std::abort();
  }
  data_.assign(static_cast<size_t>(g.total_pages()) * g.data_size, 0xFF);
  spare_.assign(static_cast<size_t>(g.total_pages()) * g.spare_size, 0xFF);
  data_programs_.assign(g.total_pages(), 0);
  spare_programs_.assign(g.total_pages(), 0);
  reads_since_erase_.assign(g.total_pages(), 0);
  scrub_flagged_.assign(g.total_pages(), 0);
  block_frontier_.assign(g.num_blocks, -1);
  plane_ready_us_.assign(g.planes_per_chip(), 0);
  plane_last_prog_.assign(g.planes_per_chip(), kNullAddr);
  stats_.block_erase_counts.assign(g.num_blocks, 0);
  stats_.plane.assign(g.planes_per_chip(), PlaneCounters{});
}

Status FlashDevice::CheckAddr(PhysAddr addr) const {
  if (addr >= config_.geometry.total_pages()) {
    return Status::InvalidArgument("physical address out of range: " +
                                   std::to_string(addr));
  }
  return Status::OK();
}

void FlashDevice::ChargeCounters(OpKind kind, uint64_t us, uint64_t count) {
  OpCounters& total = stats_.total;
  OpCounters& cat = stats_.by_category[static_cast<int>(category_)];
  switch (kind) {
    case OpKind::kRead:
      total.reads += count;
      total.read_us += us;
      cat.reads += count;
      cat.read_us += us;
      break;
    case OpKind::kProgram:
    case OpKind::kProgramSpare:
      total.writes += count;
      total.write_us += us;
      cat.writes += count;
      cat.write_us += us;
      break;
    case OpKind::kErase:
      total.erases += count;
      total.erase_us += us;
      cat.erases += count;
      cat.erase_us += us;
      break;
  }
}

void FlashDevice::SyncPlanesToClock() {
  const uint64_t now = clock_.now_us();
  if (now == clock_seen_us_) return;
  // The clock moved outside the device (an explicit Advance by harness code,
  // or a Reset). Host time passes with every plane idle, so ready floors
  // move up to now; a backwards move (Reset) rebases every plane.
  for (auto& r : plane_ready_us_) {
    if (now < clock_seen_us_ || now > r) r = now;
  }
  clock_seen_us_ = now;
}

uint64_t FlashDevice::OccupyPlane(uint32_t plane, uint64_t us) {
  SyncPlanesToClock();
  uint64_t min_ready = plane_ready_us_[0];
  for (uint64_t r : plane_ready_us_) min_ready = r < min_ready ? r : min_ready;
  const uint64_t start = plane_ready_us_[plane];
  const uint64_t end = start + us;
  plane_ready_us_[plane] = end;
  PlaneCounters& pc = stats_.plane[plane];
  pc.ops++;
  pc.busy_us += us;
  pc.stall_us += start - min_ready;
  clock_.AdvanceTo(end);
  clock_seen_us_ = clock_.now_us();
  return start;
}

void FlashDevice::Charge(OpKind kind, PhysAddr addr, uint64_t us,
                         bool cache_chain) {
  ChargeCounters(kind, us, 1);
  const uint32_t plane = config_.geometry.plane_of_block(BlockOf(addr));
  const uint64_t start = OccupyPlane(plane, us);
  if (trace_ != nullptr) {
    const uint64_t what =
        kind == OpKind::kErase ? BlockOf(addr) : static_cast<uint64_t>(addr);
    trace_->Emit(TraceCatOf(kind, cache_chain), start, us, plane, what,
                 static_cast<uint64_t>(category_));
  }
}

Status FlashDevice::ReadPage(PhysAddr addr, MutBytes data, MutBytes spare) {
  ConfinementScope confined(this);
  FLASHDB_RETURN_IF_ERROR(CheckAddr(addr));
  const auto& g = config_.geometry;
  if (!data.empty() && data.size() != g.data_size) {
    return Status::InvalidArgument("data buffer must be exactly one page");
  }
  if (!spare.empty() && spare.size() != g.spare_size) {
    return Status::InvalidArgument("spare buffer must be exactly spare_size");
  }
  Charge(OpKind::kRead, addr, config_.timing.read_us);

  // Read-error model: each attempt disturbs the page again (the counter
  // advances per pass), and the injector decides per attempt whether the raw
  // bit errors exceeded the on-chip ECC budget. Without an injector the
  // ladder never engages and the charge above is the whole story.
  uint32_t rse = ++reads_since_erase_[addr];
  bool corrupt = false;
  if (fault_injector_ != nullptr) {
    const uint32_t wear = stats_.block_erase_counts[BlockOf(addr)];
    corrupt = fault_injector_->CorruptRead(addr, 0, wear, rse);
    uint32_t attempt = 0;
    while (corrupt && attempt < config_.max_read_retries) {
      ++attempt;
      const uint64_t retry_us = config_.timing.effective_read_retry_us();
      Charge(OpKind::kRead, addr, retry_us);
      stats_.integrity.read_retries++;
      stats_.integrity.retry_us += retry_us;
      rse = ++reads_since_erase_[addr];
      corrupt = fault_injector_->CorruptRead(addr, attempt, wear, rse);
    }
    if (attempt > 0) {
      if (corrupt) {
        stats_.integrity.reads_uncorrectable++;
      } else {
        stats_.integrity.reads_corrected++;
      }
      FlagForScrub(addr);
    }
  }
  if (config_.read_disturb_limit != 0 && rse >= config_.read_disturb_limit) {
    FlagForScrub(addr);
  }

  if (!data.empty()) {
    CopyBytes(data, ConstBytes(data_.data() + static_cast<size_t>(addr) * g.data_size,
                               g.data_size));
  }
  if (!spare.empty()) {
    CopyBytes(spare,
              ConstBytes(spare_.data() + static_cast<size_t>(addr) * g.spare_size,
                         g.spare_size));
  }
  if (corrupt) {
    // The cells are intact; only this delivery is wrong. Flip bits in the
    // data area when it was requested (the common case the FTL's data CRC
    // guards), otherwise in the spare (caught by the metadata CRC).
    const uint64_t salt = (static_cast<uint64_t>(addr) << 32) | rse;
    if (!data.empty()) {
      CorruptBuffer(data, salt);
    } else {
      CorruptBuffer(spare, salt);
    }
  }
  return Status::OK();
}

void FlashDevice::CorruptBuffer(MutBytes buf, uint64_t salt) {
  if (buf.empty()) return;
  uint64_t h = MixBits64(salt ^ 0xC0FFEEULL);
  const uint32_t flips = 1 + static_cast<uint32_t>(h & 3);
  for (uint32_t i = 0; i < flips; ++i) {
    h = MixBits64(h);
    const uint64_t bit = h % (static_cast<uint64_t>(buf.size()) * 8);
    buf[bit / 8] ^= static_cast<uint8_t>(1u << (bit % 8));
  }
}

void FlashDevice::FlagForScrub(PhysAddr addr) {
  // Only data-region pages are scrub candidates: the meta region's journal
  // frames carry their own CRCs and are rewritten wholesale by the journal's
  // ping-pong, not relocated page by page.
  if (addr >= config_.geometry.data_pages()) return;
  if (scrub_flagged_[addr]) return;
  scrub_flagged_[addr] = 1;
  scrub_candidates_.push_back(addr);
}

std::vector<PhysAddr> FlashDevice::TakeScrubCandidates() {
  std::vector<PhysAddr> out;
  out.reserve(scrub_candidates_.size());
  for (PhysAddr addr : scrub_candidates_) {
    // An erase since flagging cleared the flag: the content is gone and the
    // entry is stale.
    if (!scrub_flagged_[addr]) continue;
    scrub_flagged_[addr] = 0;
    out.push_back(addr);
  }
  scrub_candidates_.clear();
  return out;
}

Status FlashDevice::ProgramCells(uint8_t* dst, ConstBytes src, PhysAddr addr,
                                 const char* area, bool strict) {
  if (strict && config_.strict_bit_semantics) {
    for (size_t i = 0; i < src.size(); ++i) {
      // A program may only clear bits: every bit set in src must already be
      // set in the cells, i.e. src & ~dst must have no bit that is 1 in src
      // but 0 in dst.
      if ((src[i] & ~dst[i]) != 0) {
        return Status::FlashConstraint(
            std::string("program attempts 0->1 transition in ") + area +
            " area of page " + std::to_string(addr));
      }
    }
  }
  for (size_t i = 0; i < src.size(); ++i) dst[i] &= src[i];
  return Status::OK();
}

Status FlashDevice::ProgramImpl(PhysAddr addr, ConstBytes data,
                                ConstBytes spare, bool strict) {
  ConfinementScope confined(this);
  FLASHDB_RETURN_IF_ERROR(CheckAddr(addr));
  const auto& g = config_.geometry;
  if (data.empty() && spare.empty()) {
    return Status::InvalidArgument("nothing to program");
  }
  if (!data.empty() && data.size() != g.data_size) {
    return Status::InvalidArgument("data image must be exactly one page");
  }
  if (!spare.empty() && spare.size() != g.spare_size) {
    return Status::InvalidArgument("spare image must be exactly spare_size");
  }
  if (!data.empty() &&
      data_programs_[addr] >= config_.max_data_programs) {
    return Status::FlashConstraint("data partial-program budget exhausted at " +
                                   std::to_string(addr));
  }
  if (!spare.empty() &&
      spare_programs_[addr] >= config_.max_spare_programs) {
    return Status::FlashConstraint(
        "spare partial-program budget exhausted at " + std::to_string(addr));
  }
  const uint32_t block = BlockOf(addr);
  const int32_t page = static_cast<int32_t>(PageInBlock(addr));
  const bool first_program = (data_programs_[addr] == 0 && spare_programs_[addr] == 0);
  if (config_.enforce_sequential_program && first_program &&
      page < block_frontier_[block]) {
    return Status::FlashConstraint(
        "non-sequential first program: page " + std::to_string(page) +
        " behind frontier " + std::to_string(block_frontier_[block]) +
        " in block " + std::to_string(block));
  }

  const OpKind kind = data.empty() ? OpKind::kProgramSpare : OpKind::kProgram;
  if (fault_injector_ != nullptr) {
    fault_injector_->BeforeMutation(kind, addr);
    if (fault_injector_->FailMutation(kind, addr)) {
      return Status::IOError("program failed (grown bad block) at page " +
                             std::to_string(addr));
    }
  }

  if (!data.empty()) {
    FLASHDB_RETURN_IF_ERROR(ProgramCells(
        data_.data() + static_cast<size_t>(addr) * g.data_size, data, addr,
        "data", strict));
    data_programs_[addr]++;
  }
  if (!spare.empty()) {
    FLASHDB_RETURN_IF_ERROR(ProgramCells(
        spare_.data() + static_cast<size_t>(addr) * g.spare_size, spare, addr,
        "spare", strict));
    spare_programs_[addr]++;
  }
  if (first_program && page > block_frontier_[block]) {
    block_frontier_[block] = page;
  }

  // Cache-program: a full-page first program that directly extends the
  // previous program chain on its plane (next page of the same block) hides
  // the data load behind the array busy time and charges the cheaper
  // latency. Any other program breaks the plane's chain. With the default
  // cache_write_us == 0 the charge is identical either way.
  const uint32_t plane = g.plane_of_block(block);
  uint64_t us = config_.timing.write_us;
  bool cache_chain = false;
  if (kind == OpKind::kProgram && first_program) {
    const PhysAddr prev = plane_last_prog_[plane];
    if (prev != kNullAddr && addr == prev + 1 && BlockOf(prev) == block) {
      us = config_.timing.effective_cache_write_us();
      cache_chain = true;
    }
    plane_last_prog_[plane] = addr;
  } else {
    plane_last_prog_[plane] = kNullAddr;
  }
  Charge(kind, addr, us, cache_chain);

  if (fault_injector_ != nullptr) {
    fault_injector_->AfterMutation(kind, addr);
  }
  return Status::OK();
}

void FlashDevice::ApplyErase(uint32_t block) {
  const auto& g = config_.geometry;
  const PhysAddr first = AddrOf(block, 0);
  std::fill(data_.begin() + static_cast<size_t>(first) * g.data_size,
            data_.begin() + static_cast<size_t>(first + g.pages_per_block) *
                                g.data_size,
            0xFF);
  std::fill(spare_.begin() + static_cast<size_t>(first) * g.spare_size,
            spare_.begin() + static_cast<size_t>(first + g.pages_per_block) *
                                 g.spare_size,
            0xFF);
  for (uint32_t p = 0; p < g.pages_per_block; ++p) {
    data_programs_[first + p] = 0;
    spare_programs_[first + p] = 0;
    reads_since_erase_[first + p] = 0;
    scrub_flagged_[first + p] = 0;  // content gone; pending flag is stale
  }
  block_frontier_[block] = -1;
  // Any array operation other than the next sequential program ends a
  // cache-program sequence, so an erase breaks its whole plane's chain, not
  // just the chain of the erased block.
  plane_last_prog_[g.plane_of_block(block)] = kNullAddr;
  stats_.block_erase_counts[block]++;
}

Status FlashDevice::EraseBlock(uint32_t block) {
  ConfinementScope confined(this);
  const auto& g = config_.geometry;
  if (block >= g.num_blocks) {
    return Status::InvalidArgument("block out of range: " +
                                   std::to_string(block));
  }
  const PhysAddr first = AddrOf(block, 0);
  if (fault_injector_ != nullptr) {
    fault_injector_->BeforeMutation(OpKind::kErase, first);
    if (fault_injector_->FailMutation(OpKind::kErase, first)) {
      // The chip spends the erase latency before reporting failure; the
      // cells keep their pre-erase contents and the block's wear counter
      // does not advance (nothing was erased).
      ChargeCounters(OpKind::kErase, config_.timing.erase_us, 1);
      const uint32_t plane = g.plane_of_block(block);
      const uint64_t start = OccupyPlane(plane, config_.timing.erase_us);
      if (trace_ != nullptr) {
        trace_->Emit(obs::TraceCat::kFlashErase, start,
                     config_.timing.erase_us, plane, block,
                     static_cast<uint64_t>(category_));
      }
      return Status::IOError("erase failed (grown bad block) at block " +
                             std::to_string(block));
    }
  }
  ApplyErase(block);
  Charge(OpKind::kErase, first, config_.timing.erase_us);
  if (fault_injector_ != nullptr) {
    fault_injector_->AfterMutation(OpKind::kErase, first);
  }
  return Status::OK();
}

Status FlashDevice::EraseBlocksMultiPlane(const std::vector<uint32_t>& blocks) {
  ConfinementScope confined(this);
  const auto& g = config_.geometry;
  if (blocks.empty() || blocks.size() > g.planes_per_die) {
    return Status::InvalidArgument(
        "multi-plane erase takes 1.." + std::to_string(g.planes_per_die) +
        " blocks, got " + std::to_string(blocks.size()));
  }
  uint32_t die = 0;
  uint32_t seen_planes = 0;  // bitmask; planes_per_chip is small
  for (size_t i = 0; i < blocks.size(); ++i) {
    if (blocks[i] >= g.num_blocks) {
      return Status::InvalidArgument("block out of range: " +
                                     std::to_string(blocks[i]));
    }
    const uint32_t d = g.die_of_block(blocks[i]);
    if (i == 0) {
      die = d;
    } else if (d != die) {
      return Status::InvalidArgument(
          "multi-plane erase spans dies " + std::to_string(die) + " and " +
          std::to_string(d));
    }
    const uint32_t bit = 1u << g.plane_of_block(blocks[i]);
    if (seen_planes & bit) {
      return Status::InvalidArgument(
          "multi-plane erase repeats plane " +
          std::to_string(g.plane_of_block(blocks[i])));
    }
    seen_planes |= bit;
  }
  if (fault_injector_ != nullptr) {
    for (uint32_t b : blocks) {
      fault_injector_->BeforeMutation(OpKind::kErase, AddrOf(b, 0));
    }
    for (uint32_t b : blocks) {
      if (fault_injector_->FailMutation(OpKind::kErase, AddrOf(b, 0))) {
        // One plane failing fails the whole command with nothing erased;
        // the FTL retries per block to isolate the grown bad block.
        return Status::IOError("multi-plane erase failed at block " +
                               std::to_string(b));
      }
    }
  }
  for (uint32_t b : blocks) ApplyErase(b);

  // One command's worth of array time, all involved planes in lockstep from
  // the latest of their ready times; the op still counts as |blocks| block
  // erases for wear/throughput accounting.
  const uint64_t us = config_.timing.effective_multiplane_erase_us();
  ChargeCounters(OpKind::kErase, us, blocks.size());
  SyncPlanesToClock();
  uint64_t min_ready = plane_ready_us_[0];
  for (uint64_t r : plane_ready_us_) min_ready = r < min_ready ? r : min_ready;
  uint64_t start = 0;
  for (uint32_t b : blocks) {
    const uint64_t r = plane_ready_us_[g.plane_of_block(b)];
    start = r > start ? r : start;
  }
  const uint64_t end = start + us;
  for (uint32_t b : blocks) {
    const uint32_t plane = g.plane_of_block(b);
    plane_ready_us_[plane] = end;
    PlaneCounters& pc = stats_.plane[plane];
    pc.ops++;
    pc.busy_us += us;
    pc.stall_us += start - min_ready;
  }
  clock_.AdvanceTo(end);
  clock_seen_us_ = clock_.now_us();
  if (trace_ != nullptr) {
    // One event per command: a0 = plane bitmask, a1 = lead block.
    trace_->Emit(obs::TraceCat::kFlashEraseMulti, start, us, seen_planes,
                 blocks[0], static_cast<uint64_t>(category_));
  }

  if (fault_injector_ != nullptr) {
    for (uint32_t b : blocks) {
      fault_injector_->AfterMutation(OpKind::kErase, AddrOf(b, 0));
    }
  }
  return Status::OK();
}

Status FlashDevice::MarkBadBlockOob(uint32_t block) {
  ConfinementScope confined(this);
  const auto& g = config_.geometry;
  if (block >= g.num_blocks) {
    return Status::InvalidArgument("block out of range: " +
                                   std::to_string(block));
  }
  const PhysAddr addr = AddrOf(block, 0);
  if (fault_injector_ != nullptr) {
    fault_injector_->BeforeMutation(OpKind::kProgramSpare, addr);
  }
  // Clear the mark byte directly: budgets and the sequential rule do not
  // apply to bad-block marking (the block is leaving service regardless).
  spare_[static_cast<size_t>(addr) * g.spare_size + kBadBlockOobOffset] = 0x00;
  if (spare_programs_[addr] < 0xFF) spare_programs_[addr]++;
  const uint32_t plane = g.plane_of_block(block);
  plane_last_prog_[plane] = kNullAddr;
  Charge(OpKind::kProgramSpare, addr, config_.timing.write_us);
  if (fault_injector_ != nullptr) {
    fault_injector_->AfterMutation(OpKind::kProgramSpare, addr);
  }
  return Status::OK();
}

bool FlashDevice::IsErased(PhysAddr addr) const {
  return data_programs_[addr] == 0 && spare_programs_[addr] == 0;
}

uint32_t FlashDevice::DataProgramCount(PhysAddr addr) const {
  return data_programs_[addr];
}

uint32_t FlashDevice::SpareProgramCount(PhysAddr addr) const {
  return spare_programs_[addr];
}

void FlashDevice::ResetAccounting() {
  stats_.Reset();
  clock_.Reset();
  // Plane ready times rebase with the clock; the cache-program chain is a
  // timing artifact, so phases start with it broken for independence.
  plane_ready_us_.assign(plane_ready_us_.size(), 0);
  plane_last_prog_.assign(plane_last_prog_.size(), kNullAddr);
  clock_seen_us_ = 0;
}

ConstBytes FlashDevice::RawData(PhysAddr addr) const {
  const auto& g = config_.geometry;
  return ConstBytes(data_.data() + static_cast<size_t>(addr) * g.data_size,
                    g.data_size);
}

ConstBytes FlashDevice::RawSpare(PhysAddr addr) const {
  const auto& g = config_.geometry;
  return ConstBytes(spare_.data() + static_cast<size_t>(addr) * g.spare_size,
                    g.spare_size);
}

}  // namespace flashdb::flash
