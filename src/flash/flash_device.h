// In-memory emulator of a NAND flash chip.
//
// The emulator enforces the physical programming model of NAND flash:
//   * reads and programs are page-granular; erases are block-granular;
//   * programming can only clear bits (1 -> 0); an erase resets a whole block
//     to all-ones;
//   * pages within a block must be first-programmed in ascending order;
//   * a page's data / spare area can only be programmed a limited number of
//     times between erases (partial programming budget).
//
// Every operation charges its datasheet latency (FlashTiming) to a virtual
// SimClock and updates FlashStats, so "I/O time" in experiments is the exact
// deterministic sum of operation costs — the same accounting the paper's
// emulator used.
//
// The chip is subdivided into dies and planes (FlashGeometry); operations on
// distinct planes overlap in virtual time while same-plane operations
// serialize. Each plane keeps a ready time; an op occupies its plane from
// that ready time and the chip clock is the completion time of the
// latest-finishing plane. On the default 1-die x 1-plane geometry this
// reduces exactly to the historical serial clock.

#ifndef FLASHDB_FLASH_FLASH_DEVICE_H_
#define FLASHDB_FLASH_FLASH_DEVICE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/bytes.h"
#include "common/sim_clock.h"
#include "common/status.h"
#include "flash/fault_injector.h"
#include "flash/flash_config.h"
#include "flash/flash_stats.h"

namespace flashdb::obs {
class TraceShard;
}  // namespace flashdb::obs

namespace flashdb::flash {

/// Physical page address: a linear page index over the whole chip.
using PhysAddr = uint32_t;

/// Sentinel for "no physical page".
inline constexpr PhysAddr kNullAddr = 0xFFFFFFFFu;

/// Byte offset inside a page's spare area holding the bad-block mark: 0xFF
/// on a good block, any cleared bit marks the block bad. The mark lives in
/// page 0's spare, past the ftl::spare_codec encoded region, mirroring the
/// OOB convention of real NAND (vendors mark factory bad blocks in the OOB
/// of the first page). Owned by the flash layer so the device can program it
/// without depending on the FTL's codec.
inline constexpr uint32_t kBadBlockOobOffset = 20;

/// The emulated chip. NOT internally synchronized: the storage stack relies
/// on *shard confinement* for thread safety -- a device (and the PageStore
/// above it) is only ever driven from one thread at a time, either the
/// owning thread of a single-chip setup or the one ShardExecutor worker its
/// shard is pinned to. Confinement hand-off (e.g. main thread formats, a
/// worker then runs the workload) is legal as long as the hand-off itself is
/// synchronized (ShardExecutor's submit / future-or-callback completion
/// edges provide this). Every
/// mutating operation asserts that no second thread is inside the device
/// concurrently, so a violated contract aborts deterministically instead of
/// corrupting the emulated cells.
class FlashDevice {
 public:
  explicit FlashDevice(const FlashConfig& config);

  const FlashConfig& config() const { return config_; }
  const FlashGeometry& geometry() const { return config_.geometry; }

  /// Block index that owns `addr`.
  uint32_t BlockOf(PhysAddr addr) const {
    return addr / config_.geometry.pages_per_block;
  }
  /// Page index of `addr` within its block.
  uint32_t PageInBlock(PhysAddr addr) const {
    return addr % config_.geometry.pages_per_block;
  }
  /// Linear address of page `page` in block `block`.
  PhysAddr AddrOf(uint32_t block, uint32_t page) const {
    return block * config_.geometry.pages_per_block + page;
  }

  /// Reads the page's data area (and spare area when `spare` is non-empty)
  /// into the caller buffers. `data` may be empty for a spare-only read.
  /// Charges one Tread regardless of which areas are requested.
  ///
  /// Read-error model: when a fault injector reports raw bit errors for an
  /// attempt (FaultInjector::CorruptRead), the device re-senses up to
  /// config().max_read_retries times, charging effective_read_retry_us() per
  /// pass to the page's plane. A read that stays bad through the ladder
  /// still returns OK but the delivered buffers carry deterministic bit
  /// flips -- silent at the device level, exactly like real NAND past its
  /// ECC budget; the FTL's spare-area data CRC is the detection layer.
  /// Retry/corrected/uncorrectable classification lands in
  /// stats().integrity; pages that needed retries (or crossed
  /// config().read_disturb_limit reads since erase) are flagged as scrub
  /// candidates.
  Status ReadPage(PhysAddr addr, MutBytes data, MutBytes spare);

  /// Convenience: spare-area-only read (used by recovery scans).
  Status ReadSpare(PhysAddr addr, MutBytes spare) {
    return ReadPage(addr, {}, spare);
  }

  /// Programs the page's data and spare areas with *fresh-write* intent:
  /// under strict_bit_semantics it is an error if any bit set to 1 in the
  /// image is already 0 in the cells (the stored result would silently differ
  /// from the image). Buffers must be exactly data_size / spare_size long
  /// (either may be empty to leave the area untouched). Charges one Twrite.
  Status ProgramPage(PhysAddr addr, ConstBytes data, ConstBytes spare) {
    return ProgramImpl(addr, data, spare, /*strict=*/true);
  }

  /// Partial program of the data area with NAND AND-semantics: a 1 bit in the
  /// image leaves the cell unchanged, a 0 bit clears it. Used by IPL to fill
  /// log slots of an already-programmed log page. Charges one Twrite and
  /// consumes one data program slot.
  Status PartialProgramPage(PhysAddr addr, ConstBytes data) {
    return ProgramImpl(addr, data, {}, /*strict=*/false);
  }

  /// Partial program of the spare area only (e.g. setting the obsolete bit);
  /// AND-semantics like PartialProgramPage. Charges one Twrite, consumes one
  /// spare program slot.
  Status ProgramSpare(PhysAddr addr, ConstBytes spare) {
    return ProgramImpl(addr, {}, spare, /*strict=*/false);
  }

  /// Erases a whole block (all pages back to 0xFF). Charges one Terase.
  /// Fails with IOError -- cells untouched, block not counted as erased --
  /// when the fault injector reports a grown bad block (the chip still
  /// charges the erase latency before reporting the failure).
  Status EraseBlock(uint32_t block);

  /// Erases up to planes_per_die blocks with one multi-plane command. All
  /// blocks must sit on the same die, on pairwise-distinct planes (the
  /// same-block-offset restriction of early multi-plane chips is relaxed, as
  /// on modern parts). Charges effective_multiplane_erase_us() once; the
  /// involved planes go busy in lockstep from the latest of their ready
  /// times. Each block's wear counter still increments individually. If any
  /// block's erase would fail (grown bad block), the whole command fails
  /// with IOError and no block is erased -- callers then retry individually
  /// to isolate the bad block, mirroring real FTL practice.
  Status EraseBlocksMultiPlane(const std::vector<uint32_t>& blocks);

  /// Programs the bad-block mark byte (ftl::kBadBlockOobOffset) in the spare
  /// area of the block's page 0, bypassing partial-program budgets and the
  /// sequential rule: marking must succeed even on a worn-out block that no
  /// longer erases. Charges one spare program. Never fails for in-range
  /// blocks (the fault injector may still cut power around it).
  Status MarkBadBlockOob(uint32_t block);

  /// True if the page has never been programmed since its last erase.
  bool IsErased(PhysAddr addr) const;

  /// Number of data-area programs since the last erase of the page.
  uint32_t DataProgramCount(PhysAddr addr) const;
  /// Number of spare-area programs since the last erase of the page.
  uint32_t SpareProgramCount(PhysAddr addr) const;

  /// Read attempts (including retry passes) against this page since its
  /// block's last erase -- the read-disturb stress input of the error model.
  uint32_t ReadsSinceErase(PhysAddr addr) const {
    return reads_since_erase_[addr];
  }

  /// Drains the scrub-candidate list: data-region pages that needed a read
  /// retry, or whose reads-since-erase counter crossed
  /// config().read_disturb_limit, since the last drain. Deduplicated; order
  /// is flag order (deterministic for a fixed operation sequence). An erase
  /// of the block clears a pending flag (the page's content is gone).
  std::vector<PhysAddr> TakeScrubCandidates();

  SimClock& clock() { return clock_; }
  const SimClock& clock() const { return clock_; }

  FlashStats& stats() { return stats_; }
  const FlashStats& stats() const { return stats_; }

  /// Current accounting category for subsequent operations.
  OpCategory category() const { return category_; }
  void set_category(OpCategory c) { category_ = c; }

  /// Installs (or clears, with nullptr) the fault injector. Not owned.
  void set_fault_injector(FaultInjector* fi) { fault_injector_ = fi; }

  /// Installs (or clears, with nullptr) the trace sink for this chip's flash
  /// command spans. Not owned; must be the owning shard's lane (the device is
  /// thread-confined, so the single-writer ring contract holds by
  /// construction). Emission only reads values the operation already
  /// computed -- attaching a sink never changes clocks, stats, or cells.
  void set_trace(obs::TraceShard* sink) { trace_ = sink; }
  obs::TraceShard* trace() const { return trace_; }

  /// Zeroes statistics and the virtual clock (flash contents untouched).
  void ResetAccounting();

  /// Direct, cost-free access to a page's data area for test assertions.
  ConstBytes RawData(PhysAddr addr) const;
  /// Direct, cost-free access to a page's spare area for test assertions.
  ConstBytes RawSpare(PhysAddr addr) const;
  /// Cost-free check of the bad-block OOB mark (test assertions; the FTL
  /// pays for real reads when it scans).
  bool HasBadBlockOob(uint32_t block) const {
    return RawSpare(AddrOf(block, 0))[kBadBlockOobOffset] != 0xFF;
  }

 private:
  /// Enforces the shard-confinement contract: entered by every device
  /// operation; aborts when a second thread enters concurrently. One relaxed
  /// RMW per operation -- noise next to the page-sized memcpy it guards.
  class ConfinementScope {
   public:
    explicit ConfinementScope(const FlashDevice* dev);
    ~ConfinementScope() { dev_->in_operation_.store(false, std::memory_order_release); }
    ConfinementScope(const ConfinementScope&) = delete;
    ConfinementScope& operator=(const ConfinementScope&) = delete;

   private:
    const FlashDevice* dev_;
  };

  Status CheckAddr(PhysAddr addr) const;
  Status ProgramImpl(PhysAddr addr, ConstBytes data, ConstBytes spare,
                     bool strict);
  /// ANDs `src` into the cell range at `dst`; when `strict`, rejects images
  /// whose stored result would differ from `src` (lost 1-bits).
  Status ProgramCells(uint8_t* dst, ConstBytes src, PhysAddr addr,
                      const char* area, bool strict);
  /// Updates op counts and work-time totals: `count` operations summing to
  /// `us` of array time (multi-plane commands pass count > 1, us once).
  void ChargeCounters(OpKind kind, uint64_t us, uint64_t count);
  /// Advances the per-plane virtual-time model: the op starts at the plane's
  /// ready time and the chip clock moves to the latest plane completion.
  /// Returns the op's start time (the plane's prior ready time) -- the span
  /// timestamp the trace layer records.
  uint64_t OccupyPlane(uint32_t plane, uint64_t us);
  /// Counters + single-plane occupancy for the plane owning `addr`, plus the
  /// trace span when a sink is attached. `cache_chain` marks a program that
  /// hit the plane's cache-program chain (traced as its own category).
  void Charge(OpKind kind, PhysAddr addr, uint64_t us,
              bool cache_chain = false);
  /// Re-floors plane ready times after an external clock Advance()/Reset().
  void SyncPlanesToClock();
  /// Resets the cells, program budgets and frontier of one block.
  void ApplyErase(uint32_t block);
  /// Marks a data-region page as a scrub candidate (idempotent until the
  /// next TakeScrubCandidates or block erase).
  void FlagForScrub(PhysAddr addr);
  /// Deterministically flips a few bits of a delivered buffer -- the payload
  /// of an uncorrectable read.
  static void CorruptBuffer(MutBytes buf, uint64_t salt);

  FlashConfig config_;
  ByteBuffer data_;                        ///< num pages * data_size
  ByteBuffer spare_;                       ///< num pages * spare_size
  std::vector<uint8_t> data_programs_;     ///< per-page data program count
  std::vector<uint8_t> spare_programs_;    ///< per-page spare program count
  std::vector<int32_t> block_frontier_;    ///< highest first-programmed page
  /// Read attempts per page since its block's last erase (read disturb).
  /// Device *physical* state like the cells, not accounting: survives
  /// ResetAccounting, cleared per block by erases.
  std::vector<uint32_t> reads_since_erase_;
  std::vector<uint8_t> scrub_flagged_;     ///< page in scrub_candidates_
  std::vector<PhysAddr> scrub_candidates_; ///< pending scrub flags, flag order
  /// Virtual time at which each plane finishes its queued work. The chip
  /// clock is always max(plane_ready_us_) after an operation; with one plane
  /// the model degenerates to plain SimClock::Advance, bit for bit.
  std::vector<uint64_t> plane_ready_us_;
  /// Last full-page program per plane (cache-program chain head), kNullAddr
  /// when the chain is broken (erase / partial program on the plane).
  std::vector<PhysAddr> plane_last_prog_;
  /// clock_.now_us() as of the last device op; detects external advances.
  uint64_t clock_seen_us_ = 0;
  SimClock clock_;
  FlashStats stats_;
  OpCategory category_ = OpCategory::kDefault;
  FaultInjector* fault_injector_ = nullptr;
  /// Trace sink for flash command spans; null = recording off (zero cost).
  obs::TraceShard* trace_ = nullptr;
  /// True while a device operation is in flight (see ConfinementScope).
  mutable std::atomic<bool> in_operation_{false};
};

/// RAII switch of the device accounting category.
class CategoryScope {
 public:
  CategoryScope(FlashDevice* dev, OpCategory c)
      : dev_(dev), saved_(dev->category()) {
    dev_->set_category(c);
  }
  ~CategoryScope() { dev_->set_category(saved_); }

  CategoryScope(const CategoryScope&) = delete;
  CategoryScope& operator=(const CategoryScope&) = delete;

 private:
  FlashDevice* dev_;
  OpCategory saved_;
};

}  // namespace flashdb::flash

#endif  // FLASHDB_FLASH_FLASH_DEVICE_H_
