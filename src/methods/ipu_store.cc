#include "methods/ipu_store.h"

#include <algorithm>
#include <string>

#include "ftl/mapping_table.h"

namespace flashdb::methods {

using flash::PhysAddr;

IpuStore::IpuStore(flash::FlashDevice* dev)
    : dev_(dev),
      data_size_(dev->geometry().data_size),
      spare_size_(dev->geometry().spare_size) {}

Status IpuStore::Format(uint32_t num_logical_pages, PageInitializer initial,
                        void* initial_arg) {
  if (num_logical_pages >= flash::kNullAddr) {
    return Status::InvalidArgument(
        "num_logical_pages collides with the reserved pid sentinel");
  }
  const auto& g = dev_->geometry();
  if (num_logical_pages > g.data_pages()) {
    return Status::NoSpace("IPU requires one physical page per logical page");
  }
  for (uint32_t b = 0; b < g.num_data_blocks(); ++b) {
    bool dirty = false;
    for (uint32_t p = 0; p < g.pages_per_block && !dirty; ++p) {
      dirty = !dev_->IsErased(dev_->AddrOf(b, p));
    }
    if (dirty) FLASHDB_RETURN_IF_ERROR(dev_->EraseBlock(b));
  }
  clock_.Reset();
  num_pages_ = num_logical_pages;
  ByteBuffer page(data_size_, 0);
  ByteBuffer spare(spare_size_, 0xFF);
  for (PageId pid = 0; pid < num_logical_pages; ++pid) {
    std::fill(page.begin(), page.end(), 0);
    if (initial != nullptr) initial(pid, page, initial_arg);
    std::fill(spare.begin(), spare.end(), 0xFF);
    ftl::EncodeSpare(spare, ftl::PageType::kData, pid, clock_.Next(), page);
    FLASHDB_RETURN_IF_ERROR(dev_->ProgramPage(pid, page, spare));
  }
  formatted_ = true;
  return Status::OK();
}

Status IpuStore::ReadPage(PageId pid, MutBytes out) {
  if (!formatted_) return Status::InvalidArgument("store not formatted");
  if (pid >= num_pages_) {
    return Status::NotFound("pid out of range: " + std::to_string(pid));
  }
  if (out.size() != data_size_) {
    return Status::InvalidArgument("output buffer must be one page");
  }
  return ftl::ReadVerifiedPage(dev_, pid, out);
}

Status IpuStore::WriteBack(PageId pid, ConstBytes page) {
  if (!formatted_) return Status::InvalidArgument("store not formatted");
  if (pid >= num_pages_) {
    return Status::NotFound("pid out of range: " + std::to_string(pid));
  }
  if (page.size() != data_size_) {
    return Status::InvalidArgument("page image must be one page");
  }
  const auto& g = dev_->geometry();
  const uint32_t block = dev_->BlockOf(pid);
  const uint32_t in_block = dev_->PageInBlock(pid);
  const PhysAddr first = dev_->AddrOf(block, 0);
  // Only pages that hold logical data need preserving.
  const uint32_t live_pages =
      std::min(g.pages_per_block,
               num_pages_ > first ? num_pages_ - first : 0u);

  // Step 1: read every other live page of the block.
  std::vector<ByteBuffer> saved_data(live_pages);
  std::vector<ByteBuffer> saved_spare(live_pages);
  for (uint32_t p = 0; p < live_pages; ++p) {
    if (p == in_block) continue;
    saved_data[p].resize(data_size_);
    saved_spare[p].resize(spare_size_);
    FLASHDB_RETURN_IF_ERROR(
        dev_->ReadPage(first + p, saved_data[p], saved_spare[p]));
    // The erase below destroys the only copy of these pages: a corrupt read
    // here would be reprogrammed as if it were good, so verify before the
    // point of no return.
    FLASHDB_RETURN_IF_ERROR(ftl::VerifyPageRead(
        ftl::DecodeSpare(saved_spare[p]), saved_data[p], first + p));
  }
  // Step 2: erase the block.
  FLASHDB_RETURN_IF_ERROR(dev_->EraseBlock(block));
  // Steps 3+4: program all live pages back in ascending (NAND) order, with
  // the updated image in its fixed slot.
  ByteBuffer spare(spare_size_, 0xFF);
  for (uint32_t p = 0; p < live_pages; ++p) {
    if (p == in_block) {
      std::fill(spare.begin(), spare.end(), 0xFF);
      ftl::EncodeSpare(spare, ftl::PageType::kData, pid, clock_.Next(), page);
      FLASHDB_RETURN_IF_ERROR(dev_->ProgramPage(pid, page, spare));
    } else {
      FLASHDB_RETURN_IF_ERROR(
          dev_->ProgramPage(first + p, saved_data[p], saved_spare[p]));
    }
  }
  return Status::OK();
}

Status IpuStore::ScrubPhysPage(PhysAddr addr, bool* relocated) {
  *relocated = false;
  if (!formatted_) return Status::InvalidArgument("store not formatted");
  // The mapping is the identity: a data-region address below num_pages_ IS
  // the logical page. WriteBack rewrites the whole block -- the erase zeroes
  // every resident page's read-disturb exposure, not just this one's.
  if (addr >= num_pages_) return Status::OK();
  ByteBuffer image(data_size_);
  FLASHDB_RETURN_IF_ERROR(ReadPage(addr, image));
  FLASHDB_RETURN_IF_ERROR(WriteBack(addr, image));
  *relocated = true;
  return Status::OK();
}

Status IpuStore::Recover() {
  // The mapping is the identity; only the page count must be re-derived.
  flash::CategoryScope cat(dev_, flash::OpCategory::kRecovery);
  uint32_t max_pid = 0;
  bool any = false;
  FLASHDB_RETURN_IF_ERROR(ftl::ForEachProgrammedSpare(
      dev_, [&](PhysAddr, const ftl::SpareInfo& info) -> Status {
        if (info.type != ftl::PageType::kData || !info.crc_ok) {
          return Status::OK();
        }
        clock_.Observe(info.timestamp);
        if (!any || info.pid > max_pid) max_pid = info.pid;
        any = true;
        return Status::OK();
      }));
  num_pages_ = any ? max_pid + 1 : 0;
  formatted_ = true;
  return Status::OK();
}

}  // namespace flashdb::methods
