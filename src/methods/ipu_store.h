// IpuStore: the page-based method with the in-place update scheme (paper
// Section 3). A logical page lives at a fixed physical page forever; every
// WriteBack therefore rewrites the page's whole block:
//   (1) read every other programmed page of the block,
//   (2) erase the block,
//   (3) program the updated page,
//   (4) re-program the pages read in (1).
// The paper includes IPU as the "rarely used" worst-case baseline; it needs
// no mapping table and trivially recovers after a crash mid-rewrite is out of
// scope (the paper's experiments never crash IPU).

#ifndef FLASHDB_METHODS_IPU_STORE_H_
#define FLASHDB_METHODS_IPU_STORE_H_

#include <vector>

#include "ftl/logical_clock.h"
#include "ftl/page_store.h"
#include "ftl/spare_codec.h"

namespace flashdb::methods {

/// See file comment.
class IpuStore : public PageStore {
 public:
  explicit IpuStore(flash::FlashDevice* dev);

  std::string_view name() const override { return "IPU"; }
  Status Format(uint32_t num_logical_pages, PageInitializer initial,
                void* initial_arg) override;
  Status ReadPage(PageId pid, MutBytes out) override;
  Status WriteBack(PageId pid, ConstBytes page) override;
  Status Flush() override { return Status::OK(); }
  /// In-place "relocation": rewrites the page's whole block (IPU's only
  /// write primitive), which erases it and so resets read-disturb exposure.
  Status ScrubPhysPage(flash::PhysAddr addr, bool* relocated) override;
  Status Recover() override;
  uint32_t num_logical_pages() const override { return num_pages_; }
  flash::FlashDevice* device() override { return dev_; }

 private:
  flash::FlashDevice* dev_;
  uint32_t data_size_;
  uint32_t spare_size_;
  ftl::LogicalClock clock_;
  uint32_t num_pages_ = 0;
  bool formatted_ = false;
};

}  // namespace flashdb::methods

#endif  // FLASHDB_METHODS_IPU_STORE_H_
