// Factory for page-update methods, keyed by the names used throughout the
// paper's figures: "PDL(256B)", "PDL(2048B)", "OPU", "IPU", "IPL(18KB)",
// "IPL(64KB)".

#ifndef FLASHDB_METHODS_METHOD_FACTORY_H_
#define FLASHDB_METHODS_METHOD_FACTORY_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "ftl/page_store.h"
#include "ftl/sharded_store.h"

namespace flashdb::methods {

/// Method family selector.
enum class MethodKind { kPdl, kOpu, kIpu, kIpl };

/// Parsed method specification.
struct MethodSpec {
  MethodKind kind = MethodKind::kPdl;
  /// PDL: Max_Differential_Size in bytes; IPL: log region bytes per block.
  uint32_t param = 0;

  std::string ToString() const;
};

/// Parses "PDL(256B)", "PDL(2KB)", "OPU", "IPU", "IPL(18KB)", ... Sizes
/// accept B/KB suffixes.
Result<MethodSpec> ParseMethodSpec(const std::string& name);

/// Instantiates a page store over `dev` for `spec`.
std::unique_ptr<PageStore> CreateStore(flash::FlashDevice* dev,
                                       const MethodSpec& spec);

/// Builds a multi-chip ShardedStore: `num_shards` fresh devices of
/// `shard_config` geometry, one `spec` store per shard, striped round-robin.
/// The store owns its devices.
std::unique_ptr<ftl::ShardedStore> CreateShardedStore(
    const flash::FlashConfig& shard_config, uint32_t num_shards,
    const MethodSpec& spec);

/// Builds a ShardedStore over caller-owned devices (the remount/recovery
/// path: the devices -- and the flash images they hold -- outlive any one
/// store instance). One `spec` store per device; all devices must share the
/// page geometry.
std::unique_ptr<ftl::ShardedStore> CreateShardedStoreOverDevices(
    const std::vector<flash::FlashDevice*>& devices, const MethodSpec& spec);

/// The six configurations evaluated in the paper's Experiment 1.
std::vector<MethodSpec> PaperMethodSet();

}  // namespace flashdb::methods

#endif  // FLASHDB_METHODS_METHOD_FACTORY_H_
