// OpuStore: the page-based method with the out-place update scheme and
// page-level mapping (paper Section 3, Fig. 3) -- the strongest conventional
// baseline ("known to have good performance even though the method consumes
// memory excessively").
//
// WriteBack programs the whole logical page into a freshly allocated physical
// page, then marks the previous copy obsolete (two write operations per
// reflected page, as counted in Fig. 12b). ReadPage is a single page read.

#ifndef FLASHDB_METHODS_OPU_STORE_H_
#define FLASHDB_METHODS_OPU_STORE_H_

#include <memory>
#include <string>

#include "ftl/block_manager.h"
#include "ftl/gc_policy.h"
#include "ftl/logical_clock.h"
#include "ftl/mapping_table.h"
#include "ftl/page_store.h"
#include "ftl/spare_codec.h"

namespace flashdb::methods {

/// Tuning knobs for OPU.
struct OpuConfig {
  uint32_t gc_reserve_blocks = 3;

  /// Victim-selection policy. Greedy is the natural fit (a valid data page
  /// reclaims nothing); cost-benefit is equivalent here and exists for
  /// experimentation.
  ftl::GcPolicyKind gc_policy = ftl::GcPolicyKind::kGreedyObsolete;
};

/// See file comment.
class OpuStore : public PageStore {
 public:
  OpuStore(flash::FlashDevice* dev, const OpuConfig& config = {});

  std::string_view name() const override { return "OPU"; }
  Status Format(uint32_t num_logical_pages, PageInitializer initial,
                void* initial_arg) override;
  Status ReadPage(PageId pid, MutBytes out) override;
  Status WriteBack(PageId pid, ConstBytes page) override;
  Status Flush() override { return Status::OK(); }  // nothing buffered
  /// Relocates the live page at `addr` via the normal out-place write path.
  Status ScrubPhysPage(flash::PhysAddr addr, bool* relocated) override;
  Status Recover() override;
  uint32_t num_logical_pages() const override { return num_pages_; }
  std::vector<uint32_t> bad_blocks() const override {
    return bm_.bad_blocks();
  }
  void NoteBadBlocksForRecovery(const std::vector<uint32_t>& blocks) override {
    pending_bad_ = blocks;
  }
  flash::FlashDevice* device() override { return dev_; }

  /// Physical location of pid (tests / diagnostics).
  flash::PhysAddr map(PageId pid) const { return map_.base(pid); }
  uint64_t gc_runs() const { return gc_runs_; }

 private:
  Result<flash::PhysAddr> AllocatePage(bool for_gc);
  Status RunGcOnce();

  flash::FlashDevice* dev_;
  OpuConfig config_;
  uint32_t data_size_;
  uint32_t spare_size_;
  ftl::BlockManager bm_;
  ftl::LogicalClock clock_;
  ftl::MappingTable map_;  ///< Page-level logical->physical table.
  std::unique_ptr<ftl::GcPolicy> gc_policy_;
  uint32_t num_pages_ = 0;
  uint64_t gc_runs_ = 0;
  bool formatted_ = false;
  /// Journaled bad-block list to re-apply at the next Recover().
  std::vector<uint32_t> pending_bad_;
};

}  // namespace flashdb::methods

#endif  // FLASHDB_METHODS_OPU_STORE_H_
