// IplStore: In-Page Logging (Lee & Moon, SIGMOD 2007) -- the log-based
// baseline of the paper.
//
// Every block is split into original pages (front) and a log region of
// `log_bytes_per_block` bytes (tail). A block stores a fixed group of
// consecutive logical pages in its original pages; update logs of those pages
// may be written only into the block's own log region. The log region is
// consumed in 128-byte slots (Sdata/16, footnote 13): each flush of a page's
// in-memory log buffer partial-programs one slot and is charged one write
// operation. When no free slot remains the block is *merged*: originals and
// logs are combined and written into a fresh block, and the old block is
// erased (cost accounted as GC, amortized into writes like the paper does).
//
// IPL is tightly coupled: the storage system must call OnUpdate() for every
// in-memory page update so the store can capture the update log. WriteBack()
// only flushes the page's pending log buffer -- the page image itself is
// never written outside merges.

#ifndef FLASHDB_METHODS_IPL_STORE_H_
#define FLASHDB_METHODS_IPL_STORE_H_

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "ftl/logical_clock.h"
#include "ftl/mapping_table.h"
#include "ftl/page_store.h"
#include "ftl/spare_codec.h"

namespace flashdb::methods {

/// Tuning knobs for IPL. The paper evaluates y = 18 KB and y = 64 KB.
struct IplConfig {
  /// Bytes of each block reserved for the log region (the paper's `y`).
  uint32_t log_bytes_per_block = 18 * 1024;

  /// In-memory log buffer per logical page; also the log slot size.
  /// 0 means "data_size / 16" (footnote 13).
  uint32_t log_buffer_bytes = 0;
};

/// Internal event counters (observability / tests).
struct IplCounters {
  uint64_t slot_writes = 0;   ///< Log-buffer flushes (one write op each).
  uint64_t merges = 0;        ///< Block merges.
  uint64_t chunked_logs = 0;  ///< Update logs split to fit a slot.
};

/// See file comment.
class IplStore : public PageStore {
 public:
  IplStore(flash::FlashDevice* dev, const IplConfig& config);

  std::string_view name() const override { return name_; }
  Status Format(uint32_t num_logical_pages, PageInitializer initial,
                void* initial_arg) override;
  Status ReadPage(PageId pid, MutBytes out) override;
  Status OnUpdate(PageId pid, ConstBytes page_after,
                  const UpdateLog& log) override;
  Status WriteBack(PageId pid, ConstBytes page) override;
  Status Flush() override;
  /// Relocation is a block merge: originals and logs of the block holding
  /// `addr` are combined into a fresh block (covers kOrig and kLog pages
  /// alike -- IPL has no finer relocation primitive).
  Status ScrubPhysPage(flash::PhysAddr addr, bool* relocated) override;
  Status Recover() override;
  uint32_t num_logical_pages() const override { return num_pages_; }
  flash::FlashDevice* device() override { return dev_; }

  const IplCounters& counters() const { return counters_; }
  uint32_t orig_pages_per_block() const { return orig_per_block_; }
  uint32_t log_pages_per_block() const { return log_pages_per_block_; }
  uint32_t slots_per_block() const { return slots_per_block_; }
  /// Number of distinct log pages holding logs of `pid` (read cost driver).
  uint32_t LogPagesOf(PageId pid) const;

 private:
  struct PendingLogs {
    ByteBuffer bytes;     ///< Serialized records: {off u16, len u16, data}*.
    uint16_t count = 0;
  };

  uint32_t LogicalBlockOf(PageId pid) const { return pid / orig_per_block_; }
  uint32_t SlotOfIndex(uint32_t slot) const { return slot % slots_per_page_; }
  uint32_t LogPageOfIndex(uint32_t slot) const { return slot / slots_per_page_; }
  /// Logical pages resident in logical block `g` (tail block may be short).
  uint32_t LivePagesIn(uint32_t g) const;

  /// Writes pid's pending log buffer into the next free slot of its block
  /// (merging first if the log region is exhausted).
  Status FlushPending(PageId pid);
  /// Appends one (possibly chunked) record to pid's pending buffer, flushing
  /// as the buffer fills.
  Status AppendRecord(PageId pid, uint32_t offset, ConstBytes data);
  /// Merges logical block `g`: combine originals with logs into a new block.
  Status MergeBlock(uint32_t g);
  /// Applies every record of `slot_bytes` that belongs to `pid` onto `page`.
  static Status ApplySlot(ConstBytes slot_bytes, PageId pid, MutBytes page,
                          bool* belongs);
  /// Applies pid's pending in-memory records onto `page`.
  Status ApplyPending(PageId pid, MutBytes page) const;

  flash::FlashDevice* dev_;
  IplConfig config_;
  std::string name_;
  uint32_t data_size_;
  uint32_t spare_size_;
  uint32_t slot_size_;            ///< = log buffer size
  uint32_t slots_per_page_;
  uint32_t log_pages_per_block_;
  uint32_t orig_per_block_;
  uint32_t slots_per_block_;
  uint32_t max_record_payload_;   ///< Largest record chunk fitting one slot.

  ftl::LogicalClock clock_;
  uint32_t num_pages_ = 0;
  uint32_t num_groups_ = 0;                 ///< Logical blocks.
  /// Logical block -> physical block (block-granular use of the shared
  /// mapping table; "base" addresses here are block indices).
  ftl::MappingTable block_map_;
  std::deque<uint32_t> free_blocks_;
  std::vector<uint16_t> next_slot_;         ///< per logical block.
  std::vector<std::vector<uint16_t>> pid_slots_;  ///< per pid, slot indices.
  std::vector<PendingLogs> pending_;        ///< per pid.
  IplCounters counters_;
  bool formatted_ = false;
};

}  // namespace flashdb::methods

#endif  // FLASHDB_METHODS_IPL_STORE_H_
