#include "methods/ipl_store.h"

#include <algorithm>
#include <cassert>
#include <unordered_map>

#include "common/coding.h"
#include "common/crc32.h"

namespace flashdb::methods {

using flash::PhysAddr;

namespace {
/// Slot header: owning pid (u32) + record count (u16) + CRC-32C (u32).
///
/// Log pages carry no data CRC in their spare (the page's data area keeps
/// evolving via partial programs), but each *slot* is programmed exactly once
/// with its final bytes -- so integrity lives here instead: the CRC covers
/// the pid+count header fields and the record payload, and every slot parse
/// (read path, merge, recovery) verifies it before trusting the records.
constexpr uint32_t kSlotHeaderSize = 10;
constexpr uint32_t kSlotCrcOffset = 6;
/// Per-record header: offset (u16) + length (u16).
constexpr uint32_t kRecordHeaderSize = 4;
constexpr uint32_t kEmptySlotPid = 0xFFFFFFFFu;

/// CRC-32C over a slot's covered bytes: header fields before the CRC, then
/// `record_bytes` payload bytes starting right after the header.
uint32_t SlotCrc(ConstBytes slot_bytes, size_t record_bytes) {
  uint32_t crc = Crc32c(slot_bytes.subspan(0, kSlotCrcOffset));
  return Crc32c(slot_bytes.subspan(kSlotHeaderSize, record_bytes), crc);
}

/// Walks a slot's record list without applying it: bounds-checks every
/// record header and verifies the slot CRC. Returns the payload length in
/// `record_bytes`.
Status CheckSlot(ConstBytes slot_bytes, size_t* record_bytes) {
  BufferReader r(slot_bytes);
  r.GetU32();  // owner
  const uint16_t count = r.GetU16();
  const uint32_t stored_crc = r.GetU32();
  const size_t start = r.position();
  for (uint16_t i = 0; i < count; ++i) {
    r.GetU16();  // offset
    const uint16_t len = r.GetU16();
    r.GetBytes(len);
    if (r.failed()) return Status::Corruption("malformed IPL slot records");
  }
  *record_bytes = r.position() - start;
  if (SlotCrc(slot_bytes, *record_bytes) != stored_crc) {
    return Status::Corruption("uncorrectable read: IPL slot CRC mismatch");
  }
  return Status::OK();
}
}  // namespace

IplStore::IplStore(flash::FlashDevice* dev, const IplConfig& config)
    : dev_(dev),
      config_(config),
      data_size_(dev->geometry().data_size),
      spare_size_(dev->geometry().spare_size),
      block_map_(/*track_diffs=*/false) {
  slot_size_ = config_.log_buffer_bytes != 0 ? config_.log_buffer_bytes
                                             : data_size_ / 16;
  if (slot_size_ < kSlotHeaderSize + kRecordHeaderSize + 1) {
    slot_size_ = kSlotHeaderSize + kRecordHeaderSize + 1;
  }
  if (slot_size_ > data_size_) slot_size_ = data_size_;
  slots_per_page_ = data_size_ / slot_size_;
  const uint32_t ppb = dev->geometry().pages_per_block;
  log_pages_per_block_ = config_.log_bytes_per_block / data_size_;
  if (log_pages_per_block_ == 0) log_pages_per_block_ = 1;
  if (log_pages_per_block_ >= ppb) log_pages_per_block_ = ppb - 1;
  orig_per_block_ = ppb - log_pages_per_block_;
  slots_per_block_ = log_pages_per_block_ * slots_per_page_;
  max_record_payload_ = slot_size_ - kSlotHeaderSize - kRecordHeaderSize;
  name_ = "IPL(" + std::to_string(config_.log_bytes_per_block / 1024) + "KB)";
}

uint32_t IplStore::LivePagesIn(uint32_t g) const {
  const uint32_t first = g * orig_per_block_;
  return std::min(orig_per_block_, num_pages_ - first);
}

Status IplStore::Format(uint32_t num_logical_pages, PageInitializer initial,
                        void* initial_arg) {
  if (num_logical_pages >= flash::kNullAddr) {
    return Status::InvalidArgument(
        "num_logical_pages collides with the reserved pid sentinel");
  }
  const auto& g = dev_->geometry();
  num_groups_ = (num_logical_pages + orig_per_block_ - 1) / orig_per_block_;
  if (num_groups_ + 1 > g.num_data_blocks()) {
    return Status::NoSpace("IPL needs one block per " +
                           std::to_string(orig_per_block_) +
                           " logical pages plus one spare block");
  }
  for (uint32_t b = 0; b < g.num_data_blocks(); ++b) {
    bool dirty = false;
    for (uint32_t p = 0; p < g.pages_per_block && !dirty; ++p) {
      dirty = !dev_->IsErased(dev_->AddrOf(b, p));
    }
    if (dirty) FLASHDB_RETURN_IF_ERROR(dev_->EraseBlock(b));
  }
  clock_.Reset();
  num_pages_ = num_logical_pages;
  block_map_.Reset(num_groups_, 0);
  next_slot_.assign(num_groups_, 0);
  pid_slots_.assign(num_pages_, {});
  pending_.assign(num_pages_, {});
  free_blocks_.clear();
  counters_ = IplCounters{};

  ByteBuffer page(data_size_, 0);
  ByteBuffer spare(spare_size_, 0xFF);
  for (uint32_t grp = 0; grp < num_groups_; ++grp) {
    block_map_.SetBase(grp, grp);
    const uint32_t live = std::min(orig_per_block_,
                                   num_pages_ - grp * orig_per_block_);
    for (uint32_t i = 0; i < live; ++i) {
      const PageId pid = grp * orig_per_block_ + i;
      std::fill(page.begin(), page.end(), 0);
      if (initial != nullptr) initial(pid, page, initial_arg);
      std::fill(spare.begin(), spare.end(), 0xFF);
      ftl::EncodeSpare(spare, ftl::PageType::kOrig, pid, clock_.Next(), page);
      FLASHDB_RETURN_IF_ERROR(
          dev_->ProgramPage(dev_->AddrOf(grp, i), page, spare));
    }
  }
  for (uint32_t b = num_groups_; b < g.num_data_blocks(); ++b) {
    free_blocks_.push_back(b);
  }
  formatted_ = true;
  return Status::OK();
}

Status IplStore::ReadPage(PageId pid, MutBytes out) {
  if (!formatted_) return Status::InvalidArgument("store not formatted");
  if (pid >= num_pages_) {
    return Status::NotFound("pid out of range: " + std::to_string(pid));
  }
  if (out.size() != data_size_) {
    return Status::InvalidArgument("output buffer must be one page");
  }
  const uint32_t grp = LogicalBlockOf(pid);
  const uint32_t block = block_map_.base(grp);
  const PhysAddr orig = dev_->AddrOf(block, pid % orig_per_block_);
  // Read the original page (CRC-verified end to end)...
  FLASHDB_RETURN_IF_ERROR(ftl::ReadVerifiedPage(dev_, orig, out));
  // ...then only the log pages of the same block holding this page's logs.
  const auto& slots = pid_slots_[pid];
  ByteBuffer log_page(data_size_);
  int32_t loaded_page = -1;
  for (uint16_t slot : slots) {
    const uint32_t lp = LogPageOfIndex(slot);
    if (static_cast<int32_t>(lp) != loaded_page) {
      const PhysAddr addr = dev_->AddrOf(block, orig_per_block_ + lp);
      // Log pages carry no spare data CRC (integrity lives in the per-slot
      // CRC, checked by ApplySlot); this still verifies the spare metadata.
      FLASHDB_RETURN_IF_ERROR(ftl::ReadVerifiedPage(dev_, addr, log_page));
      loaded_page = static_cast<int32_t>(lp);
    }
    const uint32_t s = SlotOfIndex(slot);
    bool belongs = false;
    FLASHDB_RETURN_IF_ERROR(
        ApplySlot(ConstBytes(log_page.data() + s * slot_size_, slot_size_),
                  pid, out, &belongs));
    if (!belongs) {
      return Status::Corruption("slot index table points at foreign slot");
    }
  }
  // Finally the logs still pending in memory.
  return ApplyPending(pid, out);
}

Status IplStore::ApplySlot(ConstBytes slot_bytes, PageId pid, MutBytes page,
                           bool* belongs) {
  *belongs = false;
  BufferReader r(slot_bytes);
  const uint32_t owner = r.GetU32();
  if (owner != pid) return Status::OK();
  *belongs = true;
  size_t record_bytes = 0;
  FLASHDB_RETURN_IF_ERROR(CheckSlot(slot_bytes, &record_bytes));
  const uint16_t count = r.GetU16();
  r.GetU32();  // slot CRC, verified by CheckSlot above
  for (uint16_t i = 0; i < count; ++i) {
    const uint16_t off = r.GetU16();
    const uint16_t len = r.GetU16();
    ConstBytes data = r.GetBytes(len);
    if (r.failed() || static_cast<size_t>(off) + len > page.size()) {
      return Status::Corruption("malformed IPL log record");
    }
    std::memcpy(page.data() + off, data.data(), len);
  }
  return Status::OK();
}

Status IplStore::ApplyPending(PageId pid, MutBytes page) const {
  const PendingLogs& pl = pending_[pid];
  BufferReader r(pl.bytes);
  for (uint16_t i = 0; i < pl.count; ++i) {
    const uint16_t off = r.GetU16();
    const uint16_t len = r.GetU16();
    ConstBytes data = r.GetBytes(len);
    if (r.failed() || static_cast<size_t>(off) + len > page.size()) {
      return Status::Corruption("malformed pending IPL record");
    }
    std::memcpy(page.data() + off, data.data(), len);
  }
  return Status::OK();
}

Status IplStore::OnUpdate(PageId pid, ConstBytes page_after,
                          const UpdateLog& log) {
  (void)page_after;
  if (!formatted_) return Status::InvalidArgument("store not formatted");
  if (pid >= num_pages_) {
    return Status::NotFound("pid out of range: " + std::to_string(pid));
  }
  if (log.offset + log.data.size() > data_size_) {
    return Status::InvalidArgument("update log beyond page bounds");
  }
  // Chunk oversized logs so each record fits an empty slot.
  size_t pos = 0;
  const size_t n = log.data.size();
  if (n > max_record_payload_) counters_.chunked_logs++;
  do {
    const size_t chunk = std::min<size_t>(n - pos, max_record_payload_);
    FLASHDB_RETURN_IF_ERROR(
        AppendRecord(pid, log.offset + static_cast<uint32_t>(pos),
                     ConstBytes(log.data.data() + pos, chunk)));
    pos += chunk;
  } while (pos < n);
  return Status::OK();
}

Status IplStore::AppendRecord(PageId pid, uint32_t offset, ConstBytes data) {
  PendingLogs& pl = pending_[pid];
  const size_t rec = kRecordHeaderSize + data.size();
  const size_t capacity = slot_size_ - kSlotHeaderSize;
  if (pl.bytes.size() + rec > capacity) {
    // "When this buffer is full, it is written into [the log region]."
    FLASHDB_RETURN_IF_ERROR(FlushPending(pid));
  }
  BufferWriter w(&pl.bytes);
  w.PutU16(static_cast<uint16_t>(offset));
  w.PutU16(static_cast<uint16_t>(data.size()));
  w.PutBytes(data);
  pl.count++;
  return Status::OK();
}

Status IplStore::FlushPending(PageId pid) {
  PendingLogs& pl = pending_[pid];
  if (pl.count == 0) return Status::OK();
  const uint32_t grp = LogicalBlockOf(pid);
  if (next_slot_[grp] >= slots_per_block_) {
    // No free log slot: merge originals with logs into a fresh block.
    FLASHDB_RETURN_IF_ERROR(MergeBlock(grp));
  }
  const uint32_t slot = next_slot_[grp]++;
  const uint32_t lp = LogPageOfIndex(slot);
  const uint32_t s = SlotOfIndex(slot);
  const uint32_t block = block_map_.base(grp);
  const PhysAddr addr = dev_->AddrOf(block, orig_per_block_ + lp);

  // Partial program: all-0xFF image except the slot's bytes.
  ByteBuffer image(data_size_, 0xFF);
  uint8_t* base = image.data() + s * slot_size_;
  EncodeFixed32(base, pid);
  EncodeFixed16(base + 4, pl.count);
  std::memcpy(base + kSlotHeaderSize, pl.bytes.data(), pl.bytes.size());
  EncodeFixed32(base + kSlotCrcOffset,
                SlotCrc(ConstBytes(base, slot_size_), pl.bytes.size()));
  // Unused tail of the slot must stay 0xFF? No: it must parse as "record list
  // exhausted", which the count field already guarantees. Leave it erased so
  // later slots in the same page remain programmable.
  if (s == 0 && dev_->IsErased(addr)) {
    ByteBuffer spare(spare_size_, 0xFF);
    ftl::EncodeSpare(spare, ftl::PageType::kLog, kEmptySlotPid - 1,
                     clock_.Next());
    FLASHDB_RETURN_IF_ERROR(dev_->ProgramPage(addr, image, spare));
  } else {
    // Later slots partial-program the already-written log page (1 bits leave
    // the earlier slots' cells untouched).
    FLASHDB_RETURN_IF_ERROR(dev_->PartialProgramPage(addr, image));
  }
  pid_slots_[pid].push_back(static_cast<uint16_t>(slot));
  pl.bytes.clear();
  pl.count = 0;
  counters_.slot_writes++;
  return Status::OK();
}

Status IplStore::WriteBack(PageId pid, ConstBytes page) {
  (void)page;
  if (!formatted_) return Status::InvalidArgument("store not formatted");
  if (pid >= num_pages_) {
    return Status::NotFound("pid out of range: " + std::to_string(pid));
  }
  // Log-based: reflecting a page means persisting its pending update logs.
  return FlushPending(pid);
}

Status IplStore::Flush() {
  if (!formatted_) return Status::InvalidArgument("store not formatted");
  for (PageId pid = 0; pid < num_pages_; ++pid) {
    if (pending_[pid].count != 0) FLASHDB_RETURN_IF_ERROR(FlushPending(pid));
  }
  return Status::OK();
}

Status IplStore::MergeBlock(uint32_t grp) {
  flash::CategoryScope cat(dev_, flash::OpCategory::kGc);
  if (free_blocks_.empty()) {
    return Status::NoSpace("IPL merge has no free block");
  }
  counters_.merges++;
  const uint32_t old_block = block_map_.base(grp);
  const uint32_t new_block = free_blocks_.front();
  free_blocks_.pop_front();
  const uint32_t live = LivePagesIn(grp);

  // Read the used log pages once and bucket records per pid, in slot order.
  const uint32_t used_slots = next_slot_[grp];
  const uint32_t used_log_pages =
      (used_slots + slots_per_page_ - 1) / slots_per_page_;
  std::unordered_map<PageId, ByteBuffer> logs;  // concatenated records
  std::unordered_map<PageId, uint32_t> log_counts;
  ByteBuffer log_page(data_size_);
  for (uint32_t lp = 0; lp < used_log_pages; ++lp) {
    const PhysAddr addr = dev_->AddrOf(old_block, orig_per_block_ + lp);
    FLASHDB_RETURN_IF_ERROR(ftl::ReadVerifiedPage(dev_, addr, log_page));
    for (uint32_t s = 0; s < slots_per_page_; ++s) {
      const uint32_t slot = lp * slots_per_page_ + s;
      if (slot >= used_slots) break;
      ConstBytes sb(log_page.data() + s * slot_size_, slot_size_);
      const uint32_t owner = DecodeFixed32(sb.data());
      if (owner == kEmptySlotPid) continue;
      // The erase below destroys the only copy of these records; verify the
      // slot CRC before they are folded into fresh original pages.
      size_t record_bytes = 0;
      FLASHDB_RETURN_IF_ERROR(CheckSlot(sb, &record_bytes));
      const uint16_t count = DecodeFixed16(sb.data() + 4);
      ByteBuffer& dst = logs[owner];
      dst.insert(dst.end(), sb.begin() + kSlotHeaderSize,
                 sb.begin() + kSlotHeaderSize + record_bytes);
      log_counts[owner] += count;
    }
  }

  // Rebuild each live original page and program it into the new block.
  ByteBuffer page(data_size_);
  ByteBuffer spare(spare_size_, 0xFF);
  const uint64_t merge_ts = clock_.Next();
  for (uint32_t i = 0; i < live; ++i) {
    const PageId pid = grp * orig_per_block_ + i;
    FLASHDB_RETURN_IF_ERROR(
        ftl::ReadVerifiedPage(dev_, dev_->AddrOf(old_block, i), page));
    auto it = logs.find(pid);
    if (it != logs.end()) {
      BufferReader r(it->second);
      const uint32_t count = log_counts[pid];
      for (uint32_t k = 0; k < count; ++k) {
        const uint16_t off = r.GetU16();
        const uint16_t len = r.GetU16();
        ConstBytes data = r.GetBytes(len);
        if (r.failed() || static_cast<size_t>(off) + len > page.size()) {
          return Status::Corruption("malformed merge record");
        }
        std::memcpy(page.data() + off, data.data(), len);
      }
    }
    std::fill(spare.begin(), spare.end(), 0xFF);
    ftl::EncodeSpare(spare, ftl::PageType::kOrig, pid, merge_ts, page);
    FLASHDB_RETURN_IF_ERROR(
        dev_->ProgramPage(dev_->AddrOf(new_block, i), page, spare));
    pid_slots_[pid].clear();
  }
  // The old block is subsequently erased and garbage-collected.
  FLASHDB_RETURN_IF_ERROR(dev_->EraseBlock(old_block));
  free_blocks_.push_back(old_block);
  block_map_.SetBase(grp, new_block);
  next_slot_[grp] = 0;
  return Status::OK();
}

Status IplStore::ScrubPhysPage(flash::PhysAddr addr, bool* relocated) {
  *relocated = false;
  if (!formatted_) return Status::InvalidArgument("store not formatted");
  if (addr >= dev_->geometry().data_pages()) return Status::OK();
  // Find the logical block mapped to this physical block (reverse lookup;
  // num_groups_ is small). A free/unmapped block needs no scrub -- the next
  // merge into it erases it first.
  const uint32_t block = dev_->BlockOf(addr);
  for (uint32_t g = 0; g < num_groups_; ++g) {
    if (block_map_.base(g) == block) {
      FLASHDB_RETURN_IF_ERROR(MergeBlock(g));
      *relocated = true;
      return Status::OK();
    }
  }
  return Status::OK();
}

uint32_t IplStore::LogPagesOf(PageId pid) const {
  uint32_t n = 0;
  int32_t last = -1;
  for (uint16_t slot : pid_slots_[pid]) {
    const int32_t lp = static_cast<int32_t>(LogPageOfIndex(slot));
    if (lp != last) {
      ++n;
      last = lp;
    }
  }
  return n;
}

Status IplStore::Recover() {
  flash::CategoryScope cat(dev_, flash::OpCategory::kRecovery);
  const auto& g = dev_->geometry();
  clock_.Reset();
  // Pass 1: inspect every block's original pages (spare reads) to find, per
  // logical block, the complete candidate with the highest timestamp.
  struct Candidate {
    uint32_t block = 0;
    uint64_t ts = 0;
    bool valid = false;
  };
  std::unordered_map<uint32_t, Candidate> winner;  // logical block -> choice
  std::vector<uint32_t> losers;
  ByteBuffer spare(spare_size_);
  uint32_t max_pid = 0;
  bool any = false;

  for (uint32_t b = 0; b < g.num_data_blocks(); ++b) {
    if (dev_->IsErased(dev_->AddrOf(b, 0))) continue;  // free block
    FLASHDB_RETURN_IF_ERROR(dev_->ReadSpare(dev_->AddrOf(b, 0), spare));
    ftl::SpareInfo first = ftl::DecodeSpare(spare);
    if (!first.programmed || first.type != ftl::PageType::kOrig ||
        !first.crc_ok) {
      losers.push_back(b);  // foreign or torn block
      continue;
    }
    const uint32_t grp = first.pid / orig_per_block_;
    uint64_t ts_max = 0;
    uint32_t programmed = 0;
    bool consistent = (first.pid % orig_per_block_ == 0);
    for (uint32_t i = 0; i < orig_per_block_ && consistent; ++i) {
      const PhysAddr addr = dev_->AddrOf(b, i);
      if (dev_->IsErased(addr)) break;
      FLASHDB_RETURN_IF_ERROR(dev_->ReadSpare(addr, spare));
      const ftl::SpareInfo info = ftl::DecodeSpare(spare);
      if (!info.programmed) break;
      if (info.type != ftl::PageType::kOrig || !info.crc_ok ||
          info.pid != grp * orig_per_block_ + i) {
        consistent = false;
        break;
      }
      ++programmed;
      ts_max = std::max(ts_max, info.timestamp);
      if (!any || info.pid > max_pid) max_pid = info.pid;
      any = true;
    }
    if (!consistent) {
      losers.push_back(b);
      continue;
    }
    clock_.Observe(ts_max);
    Candidate& cur = winner[grp];
    // Completeness is judged after num_pages_ is known; keep both candidates'
    // info by preferring higher (programmed, ts).
    Candidate cand{b, ts_max, true};
    auto better = [&](const Candidate& x, const Candidate& y) {
      return x.ts > y.ts;
    };
    if (!cur.valid) {
      cur = cand;
    } else {
      // Prefer the one with more programmed originals only when the newer is
      // an incomplete merge target; approximate by checking programmed count
      // lazily below. A merge target has strictly newer ts; it wins only if
      // it programmed at least as many pages as the old block.
      uint32_t cur_prog = 0;
      for (uint32_t i = 0; i < orig_per_block_; ++i) {
        if (!dev_->IsErased(dev_->AddrOf(cur.block, i))) ++cur_prog;
      }
      if (programmed >= cur_prog && better(cand, cur)) {
        losers.push_back(cur.block);
        cur = cand;
      } else if (programmed >= cur_prog && better(cur, cand)) {
        losers.push_back(b);
      } else if (programmed < cur_prog) {
        losers.push_back(b);  // incomplete merge target
      } else {
        losers.push_back(cur.block);
        cur = cand;
      }
    }
  }

  num_pages_ = any ? max_pid + 1 : 0;
  num_groups_ = (num_pages_ + orig_per_block_ - 1) / orig_per_block_;
  block_map_.Reset(num_groups_, 0);
  next_slot_.assign(num_groups_, 0);
  pid_slots_.assign(num_pages_, {});
  pending_.assign(num_pages_, {});
  free_blocks_.clear();

  std::vector<bool> used(g.num_blocks, false);
  for (auto& [grp, cand] : winner) {
    if (grp >= num_groups_) continue;
    block_map_.SetBase(grp, cand.block);
    used[cand.block] = true;
  }
  // Erase leftover merge debris so those blocks are reusable.
  for (uint32_t b : losers) {
    FLASHDB_RETURN_IF_ERROR(dev_->EraseBlock(b));
  }
  for (uint32_t b = 0; b < g.num_data_blocks(); ++b) {
    if (!used[b] && dev_->IsErased(dev_->AddrOf(b, 0))) {
      free_blocks_.push_back(b);
    }
  }

  // Pass 2: rebuild the slot tables from each winner's log region.
  ByteBuffer log_page(data_size_);
  for (uint32_t grp = 0; grp < num_groups_; ++grp) {
    const uint32_t block = block_map_.base(grp);
    if (block == flash::kNullAddr) continue;  // group without a surviving block
    uint32_t slot = 0;
    bool done = false;
    for (uint32_t lp = 0; lp < log_pages_per_block_ && !done; ++lp) {
      const PhysAddr addr = dev_->AddrOf(block, orig_per_block_ + lp);
      if (dev_->IsErased(addr)) break;
      FLASHDB_RETURN_IF_ERROR(ftl::ReadVerifiedPage(dev_, addr, log_page));
      for (uint32_t s = 0; s < slots_per_page_; ++s, ++slot) {
        ConstBytes sb(log_page.data() + s * slot_size_, slot_size_);
        const uint32_t owner = DecodeFixed32(sb.data());
        if (owner == kEmptySlotPid) {
          done = true;
          break;
        }
        // Recovery scans are data reads too: a slot either parses and passes
        // its CRC or recovery fails with the typed corruption error.
        size_t record_bytes = 0;
        FLASHDB_RETURN_IF_ERROR(CheckSlot(sb, &record_bytes));
        if (owner < num_pages_) {
          pid_slots_[owner].push_back(static_cast<uint16_t>(slot));
        }
      }
    }
    next_slot_[grp] = static_cast<uint16_t>(slot);
  }
  formatted_ = true;
  return Status::OK();
}

}  // namespace flashdb::methods
