#include "methods/opu_store.h"

#include <algorithm>
#include <string>

#include "obs/trace_recorder.h"

namespace flashdb::methods {

using flash::kNullAddr;
using flash::PhysAddr;

OpuStore::OpuStore(flash::FlashDevice* dev, const OpuConfig& config)
    : dev_(dev),
      config_(config),
      data_size_(dev->geometry().data_size),
      spare_size_(dev->geometry().spare_size),
      // Clamp the reserve on tiny chips (see PdlStore::EffectiveReserve).
      bm_(dev, std::min(config.gc_reserve_blocks,
                        std::max(2u, dev->geometry().num_data_blocks() / 8))),
      map_(/*track_diffs=*/false),
      gc_policy_(ftl::MakeGcPolicy(config.gc_policy)) {}

Status OpuStore::Format(uint32_t num_logical_pages, PageInitializer initial,
                        void* initial_arg) {
  if (num_logical_pages >= kNullAddr) {
    return Status::InvalidArgument(
        "num_logical_pages collides with the reserved pid sentinel");
  }
  const auto& g = dev_->geometry();
  // Factory bad blocks (opt-in OOB scan) are excluded before the erase sweep
  // so their marks are neither erased away nor their blocks put in service.
  std::vector<uint32_t> factory_bad;
  if (dev_->config().scan_bad_blocks) {
    FLASHDB_ASSIGN_OR_RETURN(factory_bad, ftl::ScanFactoryBadBlocks(dev_));
  }
  auto is_bad = [&](uint32_t b) {
    return std::binary_search(factory_bad.begin(), factory_bad.end(), b);
  };
  for (uint32_t b = 0; b < g.num_data_blocks(); ++b) {
    if (is_bad(b)) continue;
    bool dirty = false;
    for (uint32_t p = 0; p < g.pages_per_block && !dirty; ++p) {
      dirty = !dev_->IsErased(dev_->AddrOf(b, p));
    }
    if (dirty) FLASHDB_RETURN_IF_ERROR(dev_->EraseBlock(b));
  }
  bm_.Reset();
  for (uint32_t b : factory_bad) bm_.MarkBadForRecovery(b);
  clock_.Reset();
  num_pages_ = num_logical_pages;
  map_.Reset(num_logical_pages, g.total_pages());

  ByteBuffer page(data_size_, 0);
  ByteBuffer spare(spare_size_, 0xFF);
  for (PageId pid = 0; pid < num_logical_pages; ++pid) {
    std::fill(page.begin(), page.end(), 0);
    if (initial != nullptr) initial(pid, page, initial_arg);
    FLASHDB_ASSIGN_OR_RETURN(PhysAddr q, bm_.AllocatePage(false));
    std::fill(spare.begin(), spare.end(), 0xFF);
    ftl::EncodeSpare(spare, ftl::PageType::kData, pid, clock_.Next(), page);
    FLASHDB_RETURN_IF_ERROR(dev_->ProgramPage(q, page, spare));
    map_.SetBase(pid, q);
  }
  formatted_ = true;
  return Status::OK();
}

Status OpuStore::ReadPage(PageId pid, MutBytes out) {
  if (!formatted_) return Status::InvalidArgument("store not formatted");
  if (pid >= num_pages_) {
    return Status::NotFound("pid out of range: " + std::to_string(pid));
  }
  if (out.size() != data_size_) {
    return Status::InvalidArgument("output buffer must be one page");
  }
  return ftl::ReadVerifiedPage(dev_, map_.base(pid), out);
}

Status OpuStore::WriteBack(PageId pid, ConstBytes page) {
  if (!formatted_) return Status::InvalidArgument("store not formatted");
  if (pid >= num_pages_) {
    return Status::NotFound("pid out of range: " + std::to_string(pid));
  }
  if (page.size() != data_size_) {
    return Status::InvalidArgument("page image must be one page");
  }
  // Program the up-to-date page into a new physical page first, then set the
  // old copy obsolete (crash between the two leaves duplicates, arbitrated by
  // timestamp during recovery).
  FLASHDB_ASSIGN_OR_RETURN(PhysAddr q, AllocatePage(false));
  ByteBuffer spare(spare_size_, 0xFF);
  ftl::EncodeSpare(spare, ftl::PageType::kData, pid, clock_.Next(), page);
  FLASHDB_RETURN_IF_ERROR(dev_->ProgramPage(q, page, spare));
  const PhysAddr old = map_.base(pid);  // resolve after GC may have moved it
  FLASHDB_RETURN_IF_ERROR(bm_.MarkObsolete(old));
  map_.SetBase(pid, q);
  return Status::OK();
}

Status OpuStore::ScrubPhysPage(PhysAddr addr, bool* relocated) {
  *relocated = false;
  if (!formatted_) return Status::InvalidArgument("store not formatted");
  if (addr >= dev_->geometry().data_pages() ||
      bm_.state(addr) != ftl::PageState::kValid) {
    return Status::OK();  // obsolete/erased: the block erase clears the wear
  }
  ByteBuffer spare(spare_size_);
  FLASHDB_RETURN_IF_ERROR(dev_->ReadSpare(addr, spare));
  const ftl::SpareInfo tag = ftl::DecodeSpare(spare);
  if (!tag.programmed || tag.obsolete || tag.type != ftl::PageType::kData ||
      tag.pid >= num_pages_ || map_.base(tag.pid) != addr) {
    return Status::OK();  // stale duplicate; GC will reclaim it
  }
  ByteBuffer image(data_size_);
  FLASHDB_RETURN_IF_ERROR(ReadPage(tag.pid, image));
  FLASHDB_RETURN_IF_ERROR(WriteBack(tag.pid, image));
  *relocated = true;
  return Status::OK();
}

Result<PhysAddr> OpuStore::AllocatePage(bool for_gc) {
  while (true) {
    Result<PhysAddr> r = bm_.AllocatePage(for_gc);
    if (r.ok() || for_gc || !r.status().IsNoSpace()) return r;
    FLASHDB_RETURN_IF_ERROR(RunGcOnce());
  }
}

Status OpuStore::RunGcOnce() {
  flash::CategoryScope cat(dev_, flash::OpCategory::kGc);
  const ftl::GcScoreContext score_ctx;  // whole pages only; defaults suffice
  // On multi-plane chips the group carries one victim per plane of the lead
  // victim's die (when their scores justify it) so the final erase collapses
  // into one multi-plane command; single-plane chips get exactly one victim.
  std::vector<uint32_t> victims =
      ftl::PickVictimGroup(*gc_policy_, bm_, score_ctx);
  if (victims.empty()) {
    // All reclaimable space may sit in the open blocks; close them and retry.
    bm_.CloseOpenBlocks();
    victims = ftl::PickVictimGroup(*gc_policy_, bm_, score_ctx);
  }
  if (victims.empty()) {
    return Status::NoSpace("garbage collection found no reclaimable block");
  }
  ++gc_runs_;
  if (dev_->trace() != nullptr) {
    dev_->trace()->Emit(obs::TraceCat::kGcVictim, dev_->clock().now_us(), 0,
                        victims[0], victims.size());
  }
  const uint32_t ppb = dev_->geometry().pages_per_block;
  ByteBuffer data(data_size_);
  ByteBuffer spare(spare_size_);
  for (uint32_t block : victims) {
    for (uint32_t p = 0; p < ppb; ++p) {
      const PhysAddr addr = dev_->AddrOf(block, p);
      if (bm_.state(addr) != ftl::PageState::kValid) continue;
      FLASHDB_RETURN_IF_ERROR(dev_->ReadPage(addr, data, spare));
      const ftl::SpareInfo info = ftl::DecodeSpare(spare);
      if (info.type != ftl::PageType::kData || info.pid >= num_pages_ ||
          map_.base(info.pid) != addr) {
        continue;  // stale duplicate; dropped by the erase
      }
      // Corrupt live data must not be relocated as if it were good.
      FLASHDB_RETURN_IF_ERROR(ftl::VerifyPageRead(info, data, addr));
      FLASHDB_ASSIGN_OR_RETURN(PhysAddr q, bm_.AllocatePage(true));
      ByteBuffer new_spare(spare_size_, 0xFF);
      ftl::EncodeSpare(new_spare, ftl::PageType::kData, info.pid,
                       info.timestamp, data);
      FLASHDB_RETURN_IF_ERROR(dev_->ProgramPage(q, data, new_spare));
      map_.SetBase(info.pid, q);
    }
  }
  return bm_.EraseAndFreeGroup(victims);
}

Status OpuStore::Recover() {
  flash::CategoryScope cat(dev_, flash::OpCategory::kRecovery);
  const auto& g = dev_->geometry();
  const uint32_t total = g.data_pages();
  bm_.Reset();
  // Journaled bad blocks first (a crash may have cut power before the OOB
  // mark hit flash); the scan below rediscovers on-flash marks on its own.
  for (uint32_t b : pending_bad_) bm_.MarkBadForRecovery(b);
  pending_bad_.clear();
  clock_.Reset();
  map_.Reset(total, total);
  map_.BeginReplay();
  ByteBuffer obsolete_mark(spare_size_);
  ftl::EncodeObsoleteMark(obsolete_mark);

  auto obsolete_on_flash = [&](PhysAddr a) -> Status {
    FLASHDB_RETURN_IF_ERROR(dev_->ProgramSpare(a, obsolete_mark));
    bm_.SetObsoleteForRecovery(a);
    return Status::OK();
  };

  Status scan = ftl::ForEachProgrammedSpare(
      dev_, [&](PhysAddr addr, const ftl::SpareInfo& info) -> Status {
        if (info.bad_block && dev_->PageInBlock(addr) == 0) {
          bm_.MarkBadForRecovery(dev_->BlockOf(addr));
          if (!info.programmed) return Status::OK();
        }
        if (info.obsolete || !info.crc_ok ||
            info.type != ftl::PageType::kData || info.pid >= total) {
          bm_.SetObsoleteForRecovery(addr);
          if (!info.obsolete) {
            FLASHDB_RETURN_IF_ERROR(dev_->ProgramSpare(addr, obsolete_mark));
          }
          return Status::OK();
        }
        clock_.Observe(info.timestamp);
        const ftl::MappingTable::BaseReplay r =
            map_.ReplayBase(info.pid, addr, info.timestamp);
        if (!r.accepted) return obsolete_on_flash(addr);
        if (r.displaced_base != kNullAddr) {
          FLASHDB_RETURN_IF_ERROR(obsolete_on_flash(r.displaced_base));
        }
        bm_.SetValidForRecovery(addr);
        return Status::OK();
      });
  FLASHDB_RETURN_IF_ERROR(scan);
  bm_.FinalizeRecovery();
  num_pages_ = map_.replayed_num_pids();
  map_.EndReplay(num_pages_);
  formatted_ = true;
  return Status::OK();
}

}  // namespace flashdb::methods
