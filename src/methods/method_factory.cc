#include "methods/method_factory.h"

#include <algorithm>
#include <cctype>

#include "methods/ipl_store.h"
#include "methods/ipu_store.h"
#include "methods/opu_store.h"
#include "pdl/pdl_store.h"

namespace flashdb::methods {

std::string MethodSpec::ToString() const {
  switch (kind) {
    case MethodKind::kOpu:
      return "OPU";
    case MethodKind::kIpu:
      return "IPU";
    case MethodKind::kPdl:
      return "PDL(" + std::to_string(param) + "B)";
    case MethodKind::kIpl:
      return "IPL(" + std::to_string(param / 1024) + "KB)";
  }
  return "?";
}

namespace {
/// Parses "256B" / "2KB" / "18KB" / bare digits into bytes.
bool ParseSize(const std::string& s, uint32_t* out) {
  size_t i = 0;
  uint64_t v = 0;
  while (i < s.size() && std::isdigit(static_cast<unsigned char>(s[i]))) {
    v = v * 10 + static_cast<uint64_t>(s[i] - '0');
    ++i;
  }
  if (i == 0) return false;
  std::string suffix = s.substr(i);
  std::transform(suffix.begin(), suffix.end(), suffix.begin(), ::toupper);
  if (suffix == "KB" || suffix == "K") v *= 1024;
  else if (!(suffix.empty() || suffix == "B")) return false;
  if (v == 0 || v > (1u << 30)) return false;
  *out = static_cast<uint32_t>(v);
  return true;
}
}  // namespace

Result<MethodSpec> ParseMethodSpec(const std::string& name) {
  std::string upper = name;
  std::transform(upper.begin(), upper.end(), upper.begin(), ::toupper);
  MethodSpec spec;
  if (upper == "OPU") {
    spec.kind = MethodKind::kOpu;
    return spec;
  }
  if (upper == "IPU") {
    spec.kind = MethodKind::kIpu;
    return spec;
  }
  const size_t open = upper.find('(');
  const size_t close = upper.find(')');
  if (open == std::string::npos || close == std::string::npos || close < open) {
    return Status::InvalidArgument("unparsable method spec: " + name);
  }
  const std::string head = upper.substr(0, open);
  const std::string arg = upper.substr(open + 1, close - open - 1);
  uint32_t bytes = 0;
  if (!ParseSize(arg, &bytes)) {
    return Status::InvalidArgument("bad size in method spec: " + name);
  }
  if (head == "PDL") {
    spec.kind = MethodKind::kPdl;
    spec.param = bytes;
    return spec;
  }
  if (head == "IPL") {
    spec.kind = MethodKind::kIpl;
    spec.param = bytes;
    return spec;
  }
  return Status::InvalidArgument("unknown method family: " + name);
}

std::unique_ptr<PageStore> CreateStore(flash::FlashDevice* dev,
                                       const MethodSpec& spec) {
  switch (spec.kind) {
    case MethodKind::kOpu:
      return std::make_unique<OpuStore>(dev, OpuConfig{});
    case MethodKind::kIpu:
      return std::make_unique<IpuStore>(dev);
    case MethodKind::kPdl: {
      pdl::PdlConfig cfg;
      cfg.max_differential_size = spec.param;
      return std::make_unique<pdl::PdlStore>(dev, cfg);
    }
    case MethodKind::kIpl: {
      IplConfig cfg;
      cfg.log_bytes_per_block = spec.param;
      return std::make_unique<IplStore>(dev, cfg);
    }
  }
  return nullptr;
}

std::unique_ptr<ftl::ShardedStore> CreateShardedStore(
    const flash::FlashConfig& shard_config, uint32_t num_shards,
    const MethodSpec& spec) {
  std::vector<ftl::ShardedStore::Shard> shards(num_shards == 0 ? 1
                                                               : num_shards);
  for (auto& shard : shards) {
    shard.owned_device = std::make_unique<flash::FlashDevice>(shard_config);
    shard.device = shard.owned_device.get();
    shard.store = CreateStore(shard.device, spec);
  }
  return std::make_unique<ftl::ShardedStore>(std::move(shards));
}

std::unique_ptr<ftl::ShardedStore> CreateShardedStoreOverDevices(
    const std::vector<flash::FlashDevice*>& devices, const MethodSpec& spec) {
  std::vector<ftl::ShardedStore::Shard> shards(devices.size());
  for (size_t i = 0; i < devices.size(); ++i) {
    shards[i].device = devices[i];
    shards[i].store = CreateStore(devices[i], spec);
  }
  return std::make_unique<ftl::ShardedStore>(std::move(shards));
}

std::vector<MethodSpec> PaperMethodSet() {
  return {
      MethodSpec{MethodKind::kIpl, 18 * 1024},
      MethodSpec{MethodKind::kIpl, 64 * 1024},
      MethodSpec{MethodKind::kPdl, 2048},
      MethodSpec{MethodKind::kPdl, 256},
      MethodSpec{MethodKind::kOpu, 0},
      MethodSpec{MethodKind::kIpu, 0},
  };
}

}  // namespace flashdb::methods
