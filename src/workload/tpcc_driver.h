// Concurrent TPC-C serving over a ShardedStore: the heavy-traffic OLTP layer.
//
// Warehouse partitioning. TPC-C is built out of single-warehouse
// transactions, so the database shards naturally by warehouse: shard `s`
// hosts warehouses {w : (w-1) % S == s}, each shard runs its own BufferPool
// over its own chip (ShardedStore::shard(s)) and its own TpccWorkload
// instance holding only the hosted warehouses' tables (ITEM replicated,
// read-only). A transaction therefore touches exactly one shard, and the
// driver streams *whole transactions* to the owning shard's ShardExecutor
// worker with bounded per-shard credits -- the same continuous-submission
// pattern UpdateDriver::RunPipelined uses one layer down, lifted from
// page-op windows to transactions.
//
// Traffic model. N logical clients issue transactions round-robin (txn i
// belongs to client i % N). Each client has a home warehouse
// ((client % W) + 1) and its own RNG stream; per transaction the client
// draws a route -- hot_warehouse_pct% to warehouse 1 (the deliberate
// hotspot, the hot_shard_pct idea one layer up), remote_pct% to a uniform
// warehouse, the rest to home -- and then the transaction type from the
// standard mix. Everything *inside* the transaction draws from the owning
// shard's workload RNG, so per-shard execution is a pure function of the
// per-shard transaction sequence.
//
// Determinism contract (the correctness spine). Serve() records the
// *commit order*: the completion callback of each transaction, running on
// its shard's worker, appends to a mutex-guarded commit log. Per shard,
// tasks and their callbacks run in submission order, so every shard's
// subsequence of the log equals its submission sequence -- and the
// submission sequence is fixed by the client RNG streams alone. Replaying
// the log single-threaded (Replay()) therefore re-executes each shard's
// exact sequence and must reproduce bit-identical flash state, virtual
// clocks, latency histograms, and worst-op samples, no matter how the
// concurrent run interleaved in wall time. tests/tpcc_driver_test.cc holds
// this differentially; bench/exp16_oltp gates it on every row.

#ifndef FLASHDB_WORKLOAD_TPCC_DRIVER_H_
#define FLASHDB_WORKLOAD_TPCC_DRIVER_H_

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/random.h"
#include "ftl/shard_executor.h"
#include "ftl/sharded_store.h"
#include "storage/buffer_pool.h"
#include "workload/tpcc.h"
#include "workload/update_driver.h"

namespace flashdb::obs {
class TraceShard;
}  // namespace flashdb::obs

namespace flashdb::workload {

/// Serving configuration.
struct TpccDriverOptions {
  TpccScale scale;
  /// Logical clients; transaction i is issued by client i % num_clients.
  uint32_t num_clients = 4;
  uint64_t seed = 42;
  /// BufferPool frames per shard.
  uint32_t frames_per_shard = 128;
  /// Percentage of transactions routed to warehouse 1 (the hotspot).
  double hot_warehouse_pct = 5.0;
  /// Percentage routed to a uniformly random warehouse (cross-warehouse
  /// traffic); the remainder goes to the client's home warehouse.
  double remote_pct = 10.0;
  /// Transactions in flight per shard before the producer parks.
  uint32_t max_inflight_per_shard = 4;
  /// FlushAll the shard's pool after every transaction (write-through
  /// serving: each commit is one partitioned WriteBatch on the chip). When
  /// off, dirty pages reach flash via eviction and explicit FlushAll().
  bool flush_every_txn = true;
  /// exp7-compatibility mode (requires 1 shard, 1 client): transactions are
  /// drawn by the shard workload's own RunTransactionDrawing, consuming the
  /// single legacy RNG stream draw-for-draw like TpccWorkload::Run. The
  /// commit log still records what was drawn, so Replay() works unchanged.
  bool legacy_single_stream = false;
};

/// One committed transaction, in commit order.
struct TpccCommit {
  uint32_t client = 0;
  uint32_t warehouse = 0;
  TpccTxnType type = TpccTxnType::kNewOrder;
};
using TpccCommitLog = std::vector<TpccCommit>;

/// Per-transaction-type serving metrics. A transaction's latency is the
/// advance of its shard's virtual clock across the whole transaction
/// (including its flush); the worst-op sample carries the same GC/meta
/// attribution as the page-op layer, with `pid` holding the warehouse id.
struct TpccTypeStats {
  uint64_t count = 0;
  LatencyHistogram latency;
  WorstOpSample worst_op;
};

/// Virtual-time serving metrics of one Serve()/Replay() call.
struct TpccRunStats {
  uint64_t transactions = 0;
  std::array<TpccTypeStats, kNumTpccTxnTypes> by_type;
  /// All types merged.
  LatencyHistogram latency;
  WorstOpSample worst_op;
  /// Max over shards of the run's clock advance: the serving-throughput
  /// denominator when the chips run in parallel.
  uint64_t elapsed_vt_us = 0;
  /// Sum over shards of the clock advance (total device busy time).
  uint64_t total_work_us = 0;
  /// Wall-clock time the producer spent parked on per-shard credits
  /// (concurrent Serve only; wall time, excluded from determinism checks).
  uint64_t credit_wait_ns = 0;
};

/// See file comment.
class TpccDriver {
 public:
  /// `store` must be formatted with num_shards() * PagesPerShard(...) pages
  /// and outlive the driver. Requires num_shards() <= scale.warehouses (an
  /// empty shard would serve nothing).
  TpccDriver(ftl::ShardedStore* store, const TpccDriverOptions& opts);

  /// Logical pages each shard's chip needs: the hosted-warehouse page
  /// budget of the fullest shard (ceil(W/S) warehouses).
  static uint32_t PagesPerShard(const TpccScale& scale, uint32_t page_size,
                                uint32_t num_shards);

  uint32_t shard_of_warehouse(uint32_t w) const {
    return (w - 1) % store_->num_shards();
  }
  uint32_t home_warehouse(uint32_t client) const {
    return client % opts_.scale.warehouses + 1;
  }

  /// Loads every shard's tables -- on the shards' workers when `executor`
  /// is non-null (parallel load), inline otherwise; per-shard state is
  /// bit-identical either way (shard confinement).
  Status Load(ftl::ShardExecutor* executor);

  /// Serves `num_txns` transactions and appends their commit order to the
  /// commit log (cleared first). With `executor` non-null, transactions
  /// stream to the shard workers with bounded credits; null runs them
  /// inline in submission order. Client RNG streams persist across calls
  /// (warmup then measure continues the same traffic). Accumulates into
  /// `*out` (caller zero-initializes); `out` may be null.
  Status Serve(uint64_t num_txns, ftl::ShardExecutor* executor,
               TpccRunStats* out);

  /// Re-executes `log` single-threaded in log order against this driver's
  /// (freshly loaded) shards -- the differential half of the determinism
  /// contract. Does not consume client RNG streams.
  Status Replay(const TpccCommitLog& log, TpccRunStats* out);

  /// Flushes every shard's pool in shard order (quiescent workers only).
  Status FlushAll();

  /// Wall-clock-domain trace lane for the concurrent producer's credit-wait
  /// events (TraceRecorder::wall_lane()); null disables. Per-shard
  /// virtual-time events (flash spans, buffer traffic, transaction spans)
  /// attach via each shard device's set_trace.
  void set_wall_trace(obs::TraceShard* lane) { wall_trace_ = lane; }

  const TpccCommitLog& commit_log() const { return commit_log_; }
  TpccWorkload* shard_workload(uint32_t s) {
    return shards_[s].workload.get();
  }
  storage::BufferPool* shard_pool(uint32_t s) { return shards_[s].pool.get(); }
  ftl::ShardedStore* store() { return store_; }

 private:
  /// One shard's sub-DBMS plus its worker-confined metric accumulators
  /// (folded into the caller's TpccRunStats in shard-index order after the
  /// workers quiesce -- Merge is commutative and Offer order-stable, so the
  /// fold equals the sequential replay's).
  struct ShardState {
    std::unique_ptr<storage::BufferPool> pool;
    std::unique_ptr<TpccWorkload> workload;
    std::array<TpccTypeStats, kNumTpccTxnTypes> acc;
  };

  /// Point-in-time read of one chip's clock + by-category time totals (the
  /// same bracketing UpdateDriver uses per page op, here per transaction).
  struct CostSnap {
    uint64_t clock_us = 0;
    uint64_t read_us = 0;
    uint64_t write_us = 0;
    uint64_t gc_us = 0;
    uint64_t meta_us = 0;
  };
  static CostSnap SnapCost(flash::FlashDevice* dev);
  static WorstOpSample CostSince(const CostSnap& before,
                                 flash::FlashDevice* dev, PageId pid);

  /// One client draw: routing + type, from the client's RNG stream.
  struct Draw {
    uint32_t client = 0;
    uint32_t warehouse = 0;
    TpccTxnType type = TpccTxnType::kNewOrder;
  };
  Draw DrawNext(uint64_t txn_index);

  /// Runs one transaction on shard `s` (thread-confined to its worker or to
  /// the calling thread when inline) and records its metrics into the
  /// shard's accumulators.
  Status ExecuteTxn(uint32_t s, TpccTxnType type, uint32_t w, uint32_t client);

  Status ServeInline(uint64_t num_txns);
  Status ServeConcurrent(uint64_t num_txns, ftl::ShardExecutor* executor);

  void ResetAccumulators();
  /// Folds shard accumulators + clock deltas since `clocks_before` into
  /// `*out` (no-op when null).
  void FoldStats(const std::vector<uint64_t>& clocks_before,
                 TpccRunStats* out);

  ftl::ShardedStore* store_;
  TpccDriverOptions opts_;
  std::vector<ShardState> shards_;
  std::vector<Random> client_rngs_;
  TpccCommitLog commit_log_;
  uint64_t credit_wait_ns_ = 0;
  obs::TraceShard* wall_trace_ = nullptr;
};

}  // namespace flashdb::workload

#endif  // FLASHDB_WORKLOAD_TPCC_DRIVER_H_
