#include "workload/update_driver.h"

#include <algorithm>
#include <cmath>
#include <string>

namespace flashdb::workload {

namespace {
/// Deterministic initial content so reloads are reproducible.
void InitialImage(PageId pid, MutBytes page, void* arg) {
  const uint64_t seed = *static_cast<const uint64_t*>(arg);
  Random r(seed ^ (0x517CC1B727220A95ULL * (pid + 1)));
  r.Fill(page);
}
}  // namespace

UpdateDriver::UpdateDriver(PageStore* store, const WorkloadParams& params)
    : store_(store),
      params_(params),
      rng_(params.seed),
      data_size_(store->device()->geometry().data_size) {
  scratch_.resize(data_size_);
}

Status UpdateDriver::LoadDatabase(uint32_t num_pages) {
  num_pages_ = num_pages;
  uint64_t seed = params_.seed;
  FLASHDB_RETURN_IF_ERROR(store_->Format(num_pages, &InitialImage, &seed));
  if (params_.verify) {
    shadow_.assign(num_pages, ByteBuffer(data_size_));
    for (PageId pid = 0; pid < num_pages; ++pid) {
      InitialImage(pid, shadow_[pid], &seed);
    }
  }
  return Status::OK();
}

Status UpdateDriver::ApplyOneUpdate(PageId pid, MutBytes page) {
  // One update command changes a random contiguous region covering
  // %ChangedByOneU_Op percent of the page.
  uint32_t len = static_cast<uint32_t>(std::lround(
      params_.pct_changed_by_one_op / 100.0 * static_cast<double>(data_size_)));
  len = std::clamp<uint32_t>(len, 1, data_size_);
  const uint32_t offset =
      static_cast<uint32_t>(rng_.Uniform(data_size_ - len + 1));
  UpdateLog log;
  log.offset = offset;
  log.data.resize(len);
  rng_.Fill(log.data);
  std::memcpy(page.data() + offset, log.data.data(), len);
  // Tightly-coupled methods capture the update log here; loosely-coupled
  // methods ignore the notification.
  return store_->OnUpdate(pid, page, log);
}

Status UpdateDriver::UpdateOperation(PageId pid) {
  // Step (1): the reading step recreates the logical page from flash.
  {
    StoreCategoryScope cat(store_, flash::OpCategory::kReadStep);
    FLASHDB_RETURN_IF_ERROR(store_->ReadPage(pid, scratch_));
  }
  if (params_.verify && !BytesEqual(scratch_, shadow_[pid])) {
    return Status::Corruption("shadow mismatch on read of pid " +
                              std::to_string(pid));
  }
  // Step (2): N_updates_till_write in-memory update commands. Log-based
  // methods may spill their log buffers to flash here; that traffic belongs
  // to the writing step in the paper's accounting.
  {
    StoreCategoryScope cat(store_, flash::OpCategory::kWriteStep);
    for (uint32_t u = 0; u < params_.updates_till_write; ++u) {
      FLASHDB_RETURN_IF_ERROR(ApplyOneUpdate(pid, scratch_));
    }
  }
  if (params_.verify) shadow_[pid] = scratch_;
  // Step (3): the writing step reflects the page into flash.
  {
    StoreCategoryScope cat(store_, flash::OpCategory::kWriteStep);
    FLASHDB_RETURN_IF_ERROR(store_->WriteBack(pid, scratch_));
  }
  return Status::OK();
}

Status UpdateDriver::ReadOperation(PageId pid) {
  StoreCategoryScope cat(store_, flash::OpCategory::kReadStep);
  FLASHDB_RETURN_IF_ERROR(store_->ReadPage(pid, scratch_));
  if (params_.verify && !BytesEqual(scratch_, shadow_[pid])) {
    return Status::Corruption("shadow mismatch on read of pid " +
                              std::to_string(pid));
  }
  return Status::OK();
}

Status UpdateDriver::Warmup(double erases_per_block, uint64_t max_ops) {
  // Per-chip steady state: for a sharded store the erase target scales with
  // the block count of every shard (stats() sums them).
  uint64_t num_blocks = store_->stats().block_erase_counts.size();
  if (num_blocks == 0) num_blocks = store_->device()->geometry().num_blocks;
  const uint64_t target = static_cast<uint64_t>(
      erases_per_block * static_cast<double>(num_blocks));
  const uint64_t start = store_->total_erases();
  uint64_t ops = 0;
  while (store_->total_erases() - start < target && ops < max_ops) {
    FLASHDB_RETURN_IF_ERROR(
        UpdateOperation(static_cast<PageId>(rng_.Uniform(num_pages_))));
    ++ops;
  }
  return Status::OK();
}

Status UpdateDriver::Run(uint64_t num_ops, RunStats* out) {
  const flash::FlashStats stats0 = store_->stats();

  for (uint64_t i = 0; i < num_ops; ++i) {
    const PageId pid = static_cast<PageId>(rng_.Uniform(num_pages_));
    if (rng_.NextDouble() * 100.0 < params_.pct_update_ops) {
      FLASHDB_RETURN_IF_ERROR(UpdateOperation(pid));
      out->update_ops++;
    } else {
      FLASHDB_RETURN_IF_ERROR(ReadOperation(pid));
    }
    out->operations++;
  }

  const flash::FlashStats stats1 = store_->stats();
  out->read_step +=
      stats1.by_category[static_cast<int>(flash::OpCategory::kReadStep)] -
      stats0.by_category[static_cast<int>(flash::OpCategory::kReadStep)];
  out->write_step +=
      stats1.by_category[static_cast<int>(flash::OpCategory::kWriteStep)] -
      stats0.by_category[static_cast<int>(flash::OpCategory::kWriteStep)];
  out->gc += stats1.by_category[static_cast<int>(flash::OpCategory::kGc)] -
             stats0.by_category[static_cast<int>(flash::OpCategory::kGc)];
  out->erases += stats1.total.erases - stats0.total.erases;
  return Status::OK();
}

}  // namespace flashdb::workload
