#include "workload/update_driver.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <future>
#include <mutex>
#include <string>
#include <thread>

#include "flash/flash_device.h"
#include "ftl/shard_executor.h"
#include "ftl/sharded_store.h"
#include "obs/metrics_registry.h"
#include "obs/trace_recorder.h"

namespace flashdb::workload {

namespace {
/// Deterministic initial content so reloads are reproducible.
void InitialImage(PageId pid, MutBytes page, void* arg) {
  const uint64_t seed = *static_cast<const uint64_t*>(arg);
  Random r(seed ^ (0x517CC1B727220A95ULL * (pid + 1)));
  r.Fill(page);
}
}  // namespace

UpdateDriver::UpdateDriver(PageStore* store, const WorkloadParams& params)
    : store_(store),
      params_(params),
      rng_(params.seed),
      data_size_(store->device()->geometry().data_size) {
  scratch_.resize(data_size_);
  if (params_.hot_shard_pct > 0) {
    auto* sharded = dynamic_cast<ftl::ShardedStore*>(store_);
    if (sharded != nullptr && sharded->num_shards() > 1) {
      hot_pid_stride_ = sharded->num_shards();
    }
  }
}

PageId UpdateDriver::DrawPid() {
  if (hot_pid_stride_ != 0 &&
      rng_.NextDouble() * 100.0 < params_.hot_shard_pct) {
    // Pids congruent to 0 mod the shard count all land on shard 0: the
    // number of such pids in [0, num_pages_) is ceil(num_pages_ / stride).
    const uint32_t count = (num_pages_ + hot_pid_stride_ - 1) / hot_pid_stride_;
    return hot_pid_stride_ * static_cast<PageId>(rng_.Uniform(count));
  }
  return static_cast<PageId>(rng_.Uniform(num_pages_));
}

Status UpdateDriver::LoadDatabase(uint32_t num_pages) {
  num_pages_ = num_pages;
  uint64_t seed = params_.seed;
  FLASHDB_RETURN_IF_ERROR(store_->Format(num_pages, &InitialImage, &seed));
  if (params_.verify) {
    shadow_.assign(num_pages, ByteBuffer(data_size_));
    for (PageId pid = 0; pid < num_pages; ++pid) {
      InitialImage(pid, shadow_[pid], &seed);
    }
  }
  return Status::OK();
}

void UpdateDriver::DrawUpdateCmd(uint32_t* offset, ByteBuffer* data) {
  // One update command changes a random contiguous region covering
  // %ChangedByOneU_Op percent of the page.
  uint32_t len = static_cast<uint32_t>(std::lround(
      params_.pct_changed_by_one_op / 100.0 * static_cast<double>(data_size_)));
  len = std::clamp<uint32_t>(len, 1, data_size_);
  *offset = static_cast<uint32_t>(rng_.Uniform(data_size_ - len + 1));
  data->resize(len);
  rng_.Fill(*data);
}

Status UpdateDriver::ApplyOneUpdate(PageId pid, MutBytes page) {
  UpdateLog log;
  DrawUpdateCmd(&log.offset, &log.data);
  std::memcpy(page.data() + log.offset, log.data.data(), log.data.size());
  // Tightly-coupled methods capture the update log here; loosely-coupled
  // methods ignore the notification.
  return store_->OnUpdate(pid, page, log);
}

Status UpdateDriver::UpdateOperation(PageId pid) {
  // Step (1): the reading step recreates the logical page from flash.
  {
    StoreCategoryScope cat(store_, flash::OpCategory::kReadStep);
    FLASHDB_RETURN_IF_ERROR(store_->ReadPage(pid, scratch_));
  }
  if (params_.verify && !BytesEqual(scratch_, shadow_[pid])) {
    return Status::Corruption("shadow mismatch on read of pid " +
                              std::to_string(pid));
  }
  // Step (2): N_updates_till_write in-memory update commands. Log-based
  // methods may spill their log buffers to flash here; that traffic belongs
  // to the writing step in the paper's accounting.
  {
    StoreCategoryScope cat(store_, flash::OpCategory::kWriteStep);
    for (uint32_t u = 0; u < params_.updates_till_write; ++u) {
      FLASHDB_RETURN_IF_ERROR(ApplyOneUpdate(pid, scratch_));
    }
  }
  if (params_.verify) shadow_[pid] = scratch_;
  // Step (3): the writing step reflects the page into flash.
  {
    StoreCategoryScope cat(store_, flash::OpCategory::kWriteStep);
    FLASHDB_RETURN_IF_ERROR(store_->WriteBack(pid, scratch_));
  }
  return Status::OK();
}

Status UpdateDriver::ReadOperation(PageId pid) {
  StoreCategoryScope cat(store_, flash::OpCategory::kReadStep);
  FLASHDB_RETURN_IF_ERROR(store_->ReadPage(pid, scratch_));
  if (params_.verify && !BytesEqual(scratch_, shadow_[pid])) {
    return Status::Corruption("shadow mismatch on read of pid " +
                              std::to_string(pid));
  }
  return Status::OK();
}

Status UpdateDriver::Warmup(double erases_per_block, uint64_t max_ops) {
  // Per-chip steady state: for a sharded store the erase target scales with
  // the block count of every shard (stats() sums them).
  uint64_t num_blocks = store_->stats().block_erase_counts.size();
  if (num_blocks == 0) num_blocks = store_->device()->geometry().num_blocks;
  const uint64_t target = static_cast<uint64_t>(
      erases_per_block * static_cast<double>(num_blocks));
  const uint64_t start = store_->total_erases();
  uint64_t ops = 0;
  while (store_->total_erases() - start < target && ops < max_ops) {
    FLASHDB_RETURN_IF_ERROR(UpdateOperation(DrawPid()));
    ++ops;
  }
  return Status::OK();
}

Status UpdateDriver::Run(uint64_t num_ops, RunStats* out) {
  pending_latency_.Reset();
  pending_worst_ = WorstOpSample{};
  const flash::FlashStats stats0 = store_->stats();
  const uint64_t clock0 = StoreClockUs();
  auto* sharded = dynamic_cast<ftl::ShardedStore*>(store_);

  for (uint64_t i = 0; i < num_ops; ++i) {
    const PageId pid = DrawPid();
    // Hoisting the kind draw off the branch keeps RNG consumption (pid,
    // then kind) identical to older versions and to MakeSchedule.
    const bool is_update = rng_.NextDouble() * 100.0 < params_.pct_update_ops;
    flash::FlashDevice* dev = nullptr;
    CostSnap snap;
    if (params_.record_latency) {
      // The op's latency is its own chip's clock advance, so on a sharded
      // store the sample brackets the owning shard's device.
      dev = sharded != nullptr
                ? sharded->shard_device(sharded->shard_of(pid))
                : store_->device();
      snap = SnapCost(dev);
    }
    if (is_update) {
      FLASHDB_RETURN_IF_ERROR(UpdateOperation(pid));
      out->update_ops++;
    } else {
      FLASHDB_RETURN_IF_ERROR(ReadOperation(pid));
    }
    if (params_.record_latency) {
      const WorstOpSample sample = CostSince(snap, dev, pid);
      pending_latency_.Record(sample.total_us);
      pending_worst_.Offer(sample);
      if (dev->trace() != nullptr) {
        dev->trace()->Emit(obs::TraceCat::kOpSpan, snap.clock_us,
                           sample.total_us, pid, is_update ? 1 : 0);
      }
    }
    out->operations++;
  }

  out->latency.Merge(pending_latency_);
  out->worst_op.Offer(pending_worst_);
  const flash::FlashStats stats1 = store_->stats();
  out->read_step +=
      stats1.by_category[static_cast<int>(flash::OpCategory::kReadStep)] -
      stats0.by_category[static_cast<int>(flash::OpCategory::kReadStep)];
  out->write_step +=
      stats1.by_category[static_cast<int>(flash::OpCategory::kWriteStep)] -
      stats0.by_category[static_cast<int>(flash::OpCategory::kWriteStep)];
  out->gc += stats1.by_category[static_cast<int>(flash::OpCategory::kGc)] -
             stats0.by_category[static_cast<int>(flash::OpCategory::kGc)];
  out->meta += stats1.by_category[static_cast<int>(flash::OpCategory::kMeta)] -
               stats0.by_category[static_cast<int>(flash::OpCategory::kMeta)];
  out->erases += stats1.total.erases - stats0.total.erases;
  const flash::IntegrityCounters integrity =
      stats1.integrity - stats0.integrity;
  out->read_retries += integrity.read_retries;
  out->retry_us += integrity.retry_us;
  out->reads_corrected += integrity.reads_corrected;
  out->reads_uncorrectable += integrity.reads_uncorrectable;
  out->plane_stall_us += stats1.plane_stall_us() - stats0.plane_stall_us();
  out->elapsed_vt_us += StoreClockUs() - clock0;
  return Status::OK();
}

Schedule UpdateDriver::MakeSchedule(uint64_t num_ops) {
  // Draw-for-draw identical to Run(): pid, operation kind, then per update
  // command the DrawUpdateCmd draws, in the order Run() consumes them.
  Schedule schedule;
  schedule.reserve(num_ops);
  for (uint64_t i = 0; i < num_ops; ++i) {
    PlannedOp op;
    op.pid = DrawPid();
    op.is_update = rng_.NextDouble() * 100.0 < params_.pct_update_ops;
    if (op.is_update) {
      op.updates.resize(params_.updates_till_write);
      for (PlannedUpdate& u : op.updates) {
        DrawUpdateCmd(&u.offset, &u.data);
      }
    }
    schedule.push_back(std::move(op));
  }
  return schedule;
}

std::vector<UpdateDriver::ShardStream> UpdateDriver::PartitionSchedule(
    ChunkSpan chunk) {
  auto* sharded = dynamic_cast<ftl::ShardedStore*>(store_);
  const uint32_t n = sharded != nullptr ? sharded->num_shards() : 1;
  std::vector<ShardStream> streams(n);
  for (uint32_t i = 0; i < n; ++i) {
    ShardStream& s = streams[i];
    s.store = sharded != nullptr ? sharded->shard(i) : store_;
    s.scratch.resize(data_size_);
  }
  for (const PlannedOp& op : chunk) {
    const uint32_t shard = sharded != nullptr ? sharded->shard_of(op.pid) : 0;
    ShardStream& s = streams[shard];
    s.ops.push_back(&op);
    s.inner_pids.push_back(sharded != nullptr ? sharded->inner_pid(op.pid)
                                              : op.pid);
    s.global_pids.push_back(op.pid);
  }
  return streams;
}

Status UpdateDriver::FlushShardWindow(ShardStream* s) {
  if (s->queued_n == 0) return Status::OK();
  if (params_.record_latency) {
    // Per-write flush so each queued op gets its own clock delta. The
    // batched-write equivalence (WriteBatch == same writes via WriteBack,
    // pinned by tests/batched_write_test.cc) makes this path produce the
    // exact device state and virtual clocks of the WriteBatch path below --
    // recording changes attribution, never the gated numbers.
    flash::FlashDevice* dev = s->store->device();
    StoreCategoryScope cat(s->store, flash::OpCategory::kWriteStep);
    for (size_t i = 0; i < s->queued_n; ++i) {
      ShardStream::QueuedWrite& q = s->queued[i];
      const CostSnap snap = SnapCost(dev);
      FLASHDB_RETURN_IF_ERROR(s->store->WriteBack(q.inner_pid, q.image));
      const WorstOpSample wb = CostSince(snap, dev, q.cost.pid);
      q.cost.total_us += wb.total_us;
      q.cost.read_us += wb.read_us;
      q.cost.write_us += wb.write_us;
      q.cost.gc_us += wb.gc_us;
      q.cost.meta_us += wb.meta_us;
      s->hist.Record(q.cost.total_us);
      s->worst.Offer(q.cost);
      if (dev->trace() != nullptr) {
        // The op's span opened at its inline start; its duration is the
        // accumulated latency (inline + this write-back) -- identical in
        // every run mode sharing the schedule and batch size.
        dev->trace()->Emit(obs::TraceCat::kOpSpan, q.start_us,
                           q.cost.total_us, q.cost.pid, 1);
      }
    }
    s->queued_n = 0;
    s->latest.clear();
    return Status::OK();
  }
  std::vector<PageWrite> writes;
  writes.reserve(s->queued_n);
  for (size_t i = 0; i < s->queued_n; ++i) {
    writes.push_back(PageWrite{s->queued[i].inner_pid, s->queued[i].image});
  }
  StoreCategoryScope cat(s->store, flash::OpCategory::kWriteStep);
  FLASHDB_RETURN_IF_ERROR(s->store->WriteBatch(writes));
  s->queued_n = 0;  // images keep their capacity for the next window
  s->latest.clear();
  return Status::OK();
}

Status UpdateDriver::RunShardWindow(ShardStream* s, size_t begin, size_t end) {
  const bool record = params_.record_latency;
  flash::FlashDevice* dev = record ? s->store->device() : nullptr;
  for (size_t k = begin; k < end; ++k) {
    const PlannedOp& op = *s->ops[k];
    const PageId ipid = s->inner_pids[k];
    const PageId gpid = s->global_pids[k];
    CostSnap snap;
    if (record) snap = SnapCost(dev);
    // Reading step. A page whose write-back is still queued in this window
    // is served from the queued image (its on-flash copy is stale).
    const auto it = s->latest.find(ipid);
    if (it != s->latest.end()) {
      CopyBytes(s->scratch, s->queued[it->second].image);
    } else {
      StoreCategoryScope cat(s->store, flash::OpCategory::kReadStep);
      FLASHDB_RETURN_IF_ERROR(s->store->ReadPage(ipid, s->scratch));
    }
    if (params_.verify && !BytesEqual(s->scratch, shadow_[gpid])) {
      return Status::Corruption("shadow mismatch on read of pid " +
                                std::to_string(gpid));
    }
    if (!op.is_update) {
      // A read-only op completes here; one served from a queued image cost
      // no device time and records a 0 -- the same 0 in every run mode,
      // since window composition is fixed by the schedule.
      if (record) {
        const WorstOpSample sample = CostSince(snap, dev, gpid);
        s->hist.Record(sample.total_us);
        s->worst.Offer(sample);
        if (dev->trace() != nullptr) {
          dev->trace()->Emit(obs::TraceCat::kOpSpan, snap.clock_us,
                             sample.total_us, gpid, 0);
        }
      }
      continue;
    }
    // Updating step: apply the planned commands, notifying the store.
    {
      StoreCategoryScope cat(s->store, flash::OpCategory::kWriteStep);
      for (const PlannedUpdate& u : op.updates) {
        std::memcpy(s->scratch.data() + u.offset, u.data.data(),
                    u.data.size());
        s->log_scratch.offset = u.offset;
        s->log_scratch.data.assign(u.data.begin(), u.data.end());
        FLASHDB_RETURN_IF_ERROR(
            s->store->OnUpdate(ipid, s->scratch, s->log_scratch));
      }
    }
    if (params_.verify) shadow_[gpid] = s->scratch;
    // Queue the write-back for the window's batched flush.
    if (s->queued_n == s->queued.size()) s->queued.emplace_back();
    ShardStream::QueuedWrite& q = s->queued[s->queued_n];
    q.inner_pid = ipid;
    q.image.assign(s->scratch.begin(), s->scratch.end());
    // An update op's sample stays open until its write-back flushes: stash
    // the inline cost (reading step + log spills) with the queued write.
    q.cost = record ? CostSince(snap, dev, gpid) : WorstOpSample{};
    q.start_us = record ? snap.clock_us : 0;
    s->latest[ipid] = s->queued_n;
    ++s->queued_n;
  }
  return FlushShardWindow(s);
}

UpdateDriver::CostSnap UpdateDriver::SnapCost(flash::FlashDevice* dev) {
  // stats() returns a reference, so this is five counter loads -- cheap
  // enough to bracket every operation when recording is on.
  const flash::FlashStats& st = dev->stats();
  CostSnap snap;
  snap.clock_us = dev->clock().now_us();
  snap.read_us =
      st.by_category[static_cast<int>(flash::OpCategory::kReadStep)].total_us();
  snap.write_us =
      st.by_category[static_cast<int>(flash::OpCategory::kWriteStep)]
          .total_us();
  snap.gc_us =
      st.by_category[static_cast<int>(flash::OpCategory::kGc)].total_us();
  snap.meta_us =
      st.by_category[static_cast<int>(flash::OpCategory::kMeta)].total_us();
  return snap;
}

WorstOpSample UpdateDriver::CostSince(const CostSnap& before,
                                      flash::FlashDevice* dev, PageId pid) {
  const CostSnap after = SnapCost(dev);
  WorstOpSample s;
  s.total_us = after.clock_us - before.clock_us;
  s.read_us = after.read_us - before.read_us;
  s.write_us = after.write_us - before.write_us;
  s.gc_us = after.gc_us - before.gc_us;
  s.meta_us = after.meta_us - before.meta_us;
  s.pid = pid;
  s.valid = true;
  return s;
}

void UpdateDriver::FoldStreamLatency(std::vector<ShardStream>* streams) {
  if (!params_.record_latency) return;
  for (ShardStream& s : *streams) {
    pending_latency_.Merge(s.hist);
    pending_worst_.Offer(s.worst);
  }
}

uint64_t UpdateDriver::StoreClockUs() const {
  if (const auto* sharded = dynamic_cast<const ftl::ShardedStore*>(store_)) {
    return sharded->parallel_time_us();
  }
  // device() is non-const on PageStore; the clock read itself is const.
  return const_cast<UpdateDriver*>(this)->store_->device()->clock().now_us();
}

void UpdateDriver::AccumulateRunStats(const flash::FlashStats& before,
                                      uint64_t clock0_us,
                                      const Schedule& schedule, RunStats* out) {
  for (const PlannedOp& op : schedule) {
    out->operations++;
    if (op.is_update) out->update_ops++;
  }
  const flash::FlashStats after = store_->stats();
  out->read_step +=
      after.by_category[static_cast<int>(flash::OpCategory::kReadStep)] -
      before.by_category[static_cast<int>(flash::OpCategory::kReadStep)];
  out->write_step +=
      after.by_category[static_cast<int>(flash::OpCategory::kWriteStep)] -
      before.by_category[static_cast<int>(flash::OpCategory::kWriteStep)];
  out->gc += after.by_category[static_cast<int>(flash::OpCategory::kGc)] -
             before.by_category[static_cast<int>(flash::OpCategory::kGc)];
  out->migrate +=
      after.by_category[static_cast<int>(flash::OpCategory::kMigrate)] -
      before.by_category[static_cast<int>(flash::OpCategory::kMigrate)];
  out->meta += after.by_category[static_cast<int>(flash::OpCategory::kMeta)] -
               before.by_category[static_cast<int>(flash::OpCategory::kMeta)];
  out->scrub +=
      after.by_category[static_cast<int>(flash::OpCategory::kScrub)] -
      before.by_category[static_cast<int>(flash::OpCategory::kScrub)];
  out->erases += after.total.erases - before.total.erases;
  const flash::IntegrityCounters integrity =
      after.integrity - before.integrity;
  out->read_retries += integrity.read_retries;
  out->retry_us += integrity.retry_us;
  out->reads_corrected += integrity.reads_corrected;
  out->reads_uncorrectable += integrity.reads_uncorrectable;
  out->plane_stall_us += after.plane_stall_us() - before.plane_stall_us();
  out->elapsed_vt_us += StoreClockUs() - clock0_us;
  out->latency.Merge(pending_latency_);
  out->worst_op.Offer(pending_worst_);
}

Status UpdateDriver::RunEpochs(
    const Schedule& schedule, ftl::ShardExecutor* executor, RunStats* out,
    const std::function<Status(ChunkSpan)>& run_chunk) {
  pending_latency_.Reset();
  pending_worst_ = WorstOpSample{};
  const flash::FlashStats stats0 = store_->stats();
  const uint64_t clock0 = StoreClockUs();
  auto* sharded = dynamic_cast<ftl::ShardedStore*>(store_);
  const uint64_t epoch = params_.rebalance_epoch_ops;
  const bool leveling =
      sharded != nullptr && sharded->router()->rebalancing_enabled();
  const bool scrubbing = params_.scrub && sharded != nullptr;
  const ChunkSpan all(schedule);
  if (epoch == 0) {
    FLASHDB_RETURN_IF_ERROR(run_chunk(all));
  } else {
    // Epoch splitting applies whenever it is configured -- even with the
    // router disabled -- so a leveling-off reference run sees the exact same
    // window boundaries (and therefore virtual clocks) as a leveling-on run
    // that happens to plan zero migrations.
    uint64_t epoch_index = 0;
    for (size_t begin = 0; begin < all.size(); begin += epoch) {
      const ChunkSpan chunk =
          all.subspan(begin, std::min<size_t>(epoch, all.size() - begin));
      FLASHDB_RETURN_IF_ERROR(run_chunk(chunk));
      // Rebalance / scrub between epochs only: a trailing migration or
      // relocation could not benefit any operation of this run.
      if (leveling && begin + epoch < all.size()) {
        FLASHDB_RETURN_IF_ERROR(RebalanceEpoch(chunk, executor, out));
      }
      if (scrubbing && begin + epoch < all.size()) {
        FLASHDB_RETURN_IF_ERROR(ScrubEpoch(out));
      }
      if (params_.metrics != nullptr) {
        // Epoch time series: cumulative values at the quiescent boundary;
        // per-epoch deltas are differences of consecutive snapshots.
        obs::MetricsRegistry* m = params_.metrics;
        const flash::FlashStats st = store_->stats();
        m->Set("epoch.ops", static_cast<double>(begin + chunk.size()));
        m->Set("epoch.erases", static_cast<double>(st.total.erases));
        m->Set("epoch.clock_us", static_cast<double>(StoreClockUs()));
        m->Set("epoch.gc_us",
               static_cast<double>(
                   st.by_category[static_cast<int>(flash::OpCategory::kGc)]
                       .total_us()));
        m->Set("epoch.migrations", static_cast<double>(out->migrations));
        m->Set("epoch.scrub_relocations",
               static_cast<double>(out->scrub_relocations));
        m->SnapshotEpoch(epoch_index);
      }
      ++epoch_index;
    }
  }
  AccumulateRunStats(stats0, clock0, schedule, out);
  return Status::OK();
}

Status UpdateDriver::RebalanceEpoch(ChunkSpan chunk,
                                    ftl::ShardExecutor* executor,
                                    RunStats* out) {
  auto* sharded = static_cast<ftl::ShardedStore*>(store_);
  ftl::ShardRouter* router = sharded->router();
  // The epoch's write heat comes from the executed schedule itself, not from
  // device counters: it is the same in every execution mode by construction.
  std::vector<uint64_t> heat(router->num_buckets(), 0);
  for (const PlannedOp& op : chunk) {
    if (op.is_update) heat[router->bucket_of(op.pid)]++;
  }
  router->AddEpochHeat(heat);
  const std::vector<ftl::ShardRouter::Swap> plan =
      router->PlanRebalance(sharded->shard_erases());
  if (plan.empty()) return Status::OK();
  FLASHDB_RETURN_IF_ERROR(sharded->MigrateBuckets(plan, executor));
  out->migrations += plan.size();
  return Status::OK();
}

Status UpdateDriver::ScrubEpoch(RunStats* out) {
  auto* sharded = static_cast<ftl::ShardedStore*>(store_);
  ftl::ShardedStore::ScrubResult res;
  FLASHDB_RETURN_IF_ERROR(sharded->ScrubShards(&res));
  out->scrub_candidates += res.candidates;
  out->scrub_relocations += res.relocated;
  return Status::OK();
}

Status UpdateDriver::RunBatched(const Schedule& schedule, uint32_t batch_size,
                                RunStats* out) {
  if (batch_size == 0) {
    return Status::InvalidArgument("batch_size must be > 0");
  }
  return RunEpochs(schedule, nullptr, out, [this, batch_size](ChunkSpan c) {
    return RunBatchedChunk(c, batch_size);
  });
}

Status UpdateDriver::RunBatchedChunk(ChunkSpan chunk, uint32_t batch_size) {
  std::vector<ShardStream> streams = PartitionSchedule(chunk);
  // Shards are independent chips, so running them one after another produces
  // the same per-shard device state (and virtual clocks) as any interleaving
  // -- including RunParallel's.
  for (ShardStream& s : streams) {
    for (size_t begin = 0; begin < s.ops.size(); begin += batch_size) {
      const size_t end = std::min(s.ops.size(), begin + batch_size);
      FLASHDB_RETURN_IF_ERROR(RunShardWindow(&s, begin, end));
    }
  }
  FoldStreamLatency(&streams);
  return Status::OK();
}

Status UpdateDriver::RunParallel(const Schedule& schedule, uint32_t batch_size,
                                 ftl::ShardExecutor* executor, RunStats* out) {
  if (batch_size == 0) {
    return Status::InvalidArgument("batch_size must be > 0");
  }
  auto* sharded = dynamic_cast<ftl::ShardedStore*>(store_);
  if (sharded == nullptr) {
    return Status::InvalidArgument("RunParallel needs a ShardedStore");
  }
  if (executor == nullptr ||
      executor->num_workers() < sharded->num_shards()) {
    return Status::InvalidArgument("executor must have one worker per shard");
  }
  return RunEpochs(schedule, executor, out,
                   [this, batch_size, executor](ChunkSpan c) {
                     return RunParallelChunk(c, batch_size, executor);
                   });
}

Status UpdateDriver::RunParallelChunk(ChunkSpan chunk, uint32_t batch_size,
                                      ftl::ShardExecutor* executor) {
  std::vector<ShardStream> streams = PartitionSchedule(chunk);
  // One task per window, all windows of shard i on worker i: each chip's
  // pipeline is thread-confined to its worker and windows run in schedule
  // order, so per-shard execution is bit-identical to RunBatched.
  std::vector<std::future<Status>> futures;
  for (uint32_t i = 0; i < static_cast<uint32_t>(streams.size()); ++i) {
    ShardStream* s = &streams[i];
    for (size_t begin = 0; begin < s->ops.size(); begin += batch_size) {
      const size_t end = std::min(s->ops.size(), begin + batch_size);
      futures.push_back(executor->Submit(
          i, [this, s, begin, end] { return RunShardWindow(s, begin, end); }));
    }
  }
  // Gather every window's Status; the future joins also publish the workers'
  // device mutations to this thread before the caller's stats snapshot.
  Status first_error = Status::OK();
  for (auto& f : futures) {
    const Status st = f.get();
    if (!st.ok() && first_error.ok()) first_error = st;
  }
  // The joins above quiesced every worker, so the streams' histograms are
  // safe to fold here (shard order, same as the other modes).
  FoldStreamLatency(&streams);
  return first_error;
}

Status UpdateDriver::RunPipelined(const Schedule& schedule,
                                  uint32_t batch_size, uint32_t max_inflight,
                                  ftl::ShardExecutor* executor,
                                  RunStats* out) {
  if (batch_size == 0) {
    return Status::InvalidArgument("batch_size must be > 0");
  }
  if (max_inflight == 0) {
    return Status::InvalidArgument("max_inflight must be > 0");
  }
  // A flat store pipelines too: the whole schedule is one stream streamed
  // depth-max_inflight to worker 0 (see the header comment) -- that is the
  // threaded run mode of the single-chip experiments.
  auto* sharded = dynamic_cast<ftl::ShardedStore*>(store_);
  const uint32_t workers_needed =
      sharded != nullptr ? sharded->num_shards() : 1;
  if (executor == nullptr || executor->num_workers() < workers_needed) {
    return Status::InvalidArgument("executor must have one worker per shard");
  }
  const uint64_t wait0 = credit_wait_ns_;
  const Status st =
      RunEpochs(schedule, executor, out,
                [this, batch_size, max_inflight, executor](ChunkSpan c) {
                  return RunPipelinedChunk(c, batch_size, max_inflight,
                                           executor);
                });
  out->credit_wait_ns += credit_wait_ns_ - wait0;
  return st;
}

Status UpdateDriver::RunPipelinedChunk(ChunkSpan chunk, uint32_t batch_size,
                                       uint32_t max_inflight,
                                       ftl::ShardExecutor* executor) {
  std::vector<ShardStream> streams = PartitionSchedule(chunk);
  const uint32_t n = static_cast<uint32_t>(streams.size());

  // Credit accounting shared between the submitting thread and the workers'
  // completion callbacks. The hot path is lock-free: callbacks return
  // credits with atomic decrements and only take the mutex to wake a parked
  // producer (same Dekker-style handshake as the executor's own park/wake)
  // or to record the first error. The release-decrements of
  // `inflight_total` paired with this thread's acquire-load of 0 also
  // publish the workers' device mutations before the stats snapshot below.
  struct Control {
    std::vector<std::atomic<uint32_t>> inflight;
    std::atomic<bool> producer_waiting{false};
    std::atomic<bool> has_error{false};
    std::mutex mu;  // guards first_error; wake-up serialization
    std::condition_variable cv;
    Status first_error;

    explicit Control(uint32_t n) : inflight(n) {}

    void OnComplete(uint32_t shard, const Status& st) {
      if (!st.ok()) {
        std::lock_guard<std::mutex> lock(mu);
        if (first_error.ok()) first_error = st;
        has_error.store(true, std::memory_order_release);
      }
      inflight[shard].fetch_sub(1, std::memory_order_release);
      // Producer-side pairing: it sets producer_waiting, fences, then
      // re-checks credits before parking; the fence here makes it
      // impossible for both sides to read stale values (lost wakeup).
      std::atomic_thread_fence(std::memory_order_seq_cst);
      if (producer_waiting.load(std::memory_order_relaxed)) {
        std::lock_guard<std::mutex> lock(mu);
        cv.notify_one();
      }
    }

    /// Parks the producer until `ready` (a credit/progress predicate over
    /// the atomics) holds. Cold path only, so the std::function indirection
    /// does not matter.
    void WaitFor(const std::function<bool()>& ready) {
      std::unique_lock<std::mutex> lock(mu);
      producer_waiting.store(true, std::memory_order_relaxed);
      std::atomic_thread_fence(std::memory_order_seq_cst);
      cv.wait(lock, ready);
      producer_waiting.store(false, std::memory_order_relaxed);
    }
  } ctl(n);

  std::vector<size_t> next_begin(n, 0);  // submission cursor per shard
  bool stop_submitting = false;
  while (!stop_submitting) {
    // Round-robin pass: give every shard with spare credit its next window.
    // Interleaving submission across shards (instead of finishing one shard
    // first) is what keeps every chip fed when one of them is hot.
    bool submitted_any = false;
    bool work_left = false;
    for (uint32_t i = 0; i < n && !stop_submitting; ++i) {
      ShardStream* s = &streams[i];
      if (next_begin[i] >= s->ops.size()) continue;
      if (ctl.has_error.load(std::memory_order_acquire)) {
        stop_submitting = true;
        break;
      }
      work_left = true;
      // Only this thread increments, so load-then-add cannot overshoot.
      if (ctl.inflight[i].load(std::memory_order_acquire) >= max_inflight) {
        continue;  // no credit
      }
      ctl.inflight[i].fetch_add(1, std::memory_order_relaxed);
      const size_t begin = next_begin[i];
      const size_t end = std::min(s->ops.size(), begin + batch_size);
      next_begin[i] = end;
      const Status submitted = executor->SubmitWithCallback(
          i, [this, s, begin, end] { return RunShardWindow(s, begin, end); },
          [&ctl, i](const Status& st) { ctl.OnComplete(i, st); });
      if (!submitted.ok()) {
        // Nothing was enqueued and the callback will never run: hand the
        // credit back and stop streaming.
        ctl.inflight[i].fetch_sub(1, std::memory_order_relaxed);
        {
          std::lock_guard<std::mutex> lock(ctl.mu);
          if (ctl.first_error.ok()) ctl.first_error = submitted;
          ctl.has_error.store(true, std::memory_order_release);
        }
        stop_submitting = true;
        break;
      }
      submitted_any = true;
    }
    if (!work_left) break;
    if (!submitted_any && !stop_submitting) {
      // Every remaining shard is at its credit limit: park until a
      // completion returns a credit somewhere. This is the per-shard
      // backpressure point -- no barrier, just "some credit came back".
      // The parked wall time is the run's credit-wait attribution.
      const auto park_start = std::chrono::steady_clock::now();
      ctl.WaitFor([&] {
        if (ctl.has_error.load(std::memory_order_acquire)) return true;
        for (uint32_t i = 0; i < n; ++i) {
          if (next_begin[i] < streams[i].ops.size() &&
              ctl.inflight[i].load(std::memory_order_acquire) <
                  max_inflight) {
            return true;
          }
        }
        return false;
      });
      const uint64_t waited_ns = static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - park_start)
              .count());
      credit_wait_ns_ += waited_ns;
      if (wall_trace_ != nullptr) {
        // Wall-clock domain: stamped with the producer's cumulative parked
        // time, excluded from the canonical (deterministic) stream.
        wall_trace_->Emit(obs::TraceCat::kCreditWait,
                          (credit_wait_ns_ - waited_ns) / 1000,
                          waited_ns / 1000, ~0ull, waited_ns);
      }
    }
  }

  // Drain: the in-flight windows reference `streams` (and their callbacks
  // reference `ctl`) on this stack frame, so everything must finish before
  // we return -- error or not. Quiescence comes from the *executor's*
  // counters, not from ctl's credits: `completed` only increments after a
  // task's completion callback has fully returned, so equality here proves
  // no worker can touch ctl (or a stream) again. A credit-based drain would
  // race -- a callback may still be inside ctl's mutex right after handing
  // back the credit that makes the count hit zero. The acquire loads pair
  // with the workers' release increments and also publish their device
  // mutations to this thread before the caller's stats snapshot (and before
  // any epoch-boundary rebalancing touches the chips).
  for (uint32_t i = 0; i < n; ++i) {
    while (executor->completed_count(i) != executor->submitted_count(i)) {
      std::this_thread::yield();  // tail is at most max_inflight windows
    }
  }
  FoldStreamLatency(&streams);
  return ctl.first_error;
}

}  // namespace flashdb::workload
