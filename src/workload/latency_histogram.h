// HdrHistogram-style log-linear latency histogram over virtual microseconds.
//
// The recorder exists to make tail latency a *deterministic* bench column:
// every sample is a delta of a shard device's virtual clock (SimClock), so
// for a fixed seed/flags the full distribution -- not just the mean -- is
// reproducible bit-for-bit across the sequential, batched, parallel, and
// pipelined run modes. That is what lets tools/check_bench.py gate
// p50/p99/p999 tightly, where wall-clock percentiles could only ever be
// warn-only.
//
// Bucketing follows HdrHistogram with kPrecisionBits sub-bucket bits: values
// below 2^kPrecisionBits land in exact unit buckets; above that, each
// power-of-two doubling is split into 2^(kPrecisionBits-1) linear
// sub-buckets, bounding the relative quantization error of any reported
// percentile by 2^-(kPrecisionBits-1) (~3.1% at the default 6 bits). Counts
// are plain uint64 adds, so Merge() is element-wise addition -- associative
// and commutative -- which is why per-shard histograms folded in shard order
// equal one histogram fed by the sequential replay, regardless of how the
// threaded run interleaved shards in wall time.

#ifndef FLASHDB_WORKLOAD_LATENCY_HISTOGRAM_H_
#define FLASHDB_WORKLOAD_LATENCY_HISTOGRAM_H_

#include <algorithm>
#include <bit>
#include <cstdint>
#include <limits>
#include <vector>

namespace flashdb::workload {

/// Mergeable log-linear histogram of non-negative virtual-time samples.
///
/// Header-only and allocation-light: the counts array grows lazily to the
/// highest bucket touched, so an idle histogram costs a few pointers and a
/// typical run (samples below ~2^20 us) stays under a kilobyte.
class LatencyHistogram {
 public:
  /// Sub-bucket precision: values < 64 are exact; larger values quantize to
  /// one of 32 linear sub-buckets per power-of-two range (<= 3.2% error).
  static constexpr uint32_t kPrecisionBits = 6;
  static constexpr uint32_t kUnitBuckets = 1u << kPrecisionBits;       // 64
  static constexpr uint32_t kSubBuckets = 1u << (kPrecisionBits - 1);  // 32

  /// Bucket index of `value`. Total index space for uint64 values is
  /// kUnitBuckets + 58*kSubBuckets = 1920 buckets.
  static constexpr uint32_t BucketIndex(uint64_t value) {
    if (value < kUnitBuckets) return static_cast<uint32_t>(value);
    // Position of the highest set bit; >= kPrecisionBits here.
    const uint32_t msb = 63u - static_cast<uint32_t>(std::countl_zero(value));
    // Shift that maps [2^msb, 2^(msb+1)) onto [kSubBuckets, 2*kSubBuckets).
    const uint32_t shift = msb - (kPrecisionBits - 1);
    const uint32_t sub = static_cast<uint32_t>(value >> shift);
    return kUnitBuckets + (shift - 1) * kSubBuckets + (sub - kSubBuckets);
  }

  /// Smallest value mapping to bucket `index` (the value percentiles report).
  static constexpr uint64_t BucketLowerBound(uint32_t index) {
    if (index < kUnitBuckets) return index;
    const uint32_t d = (index - kUnitBuckets) / kSubBuckets;
    const uint32_t r = (index - kUnitBuckets) % kSubBuckets;
    return static_cast<uint64_t>(kSubBuckets + r) << (d + 1);
  }

  void Record(uint64_t value_us) {
    const uint32_t idx = BucketIndex(value_us);
    if (idx >= counts_.size()) counts_.resize(idx + 1, 0);
    ++counts_[idx];
    ++count_;
    sum_ += value_us;
    min_ = std::min(min_, value_us);
    max_ = std::max(max_, value_us);
  }

  /// Element-wise addition of counters; associative and commutative, so the
  /// fold order over shards never changes the result.
  void Merge(const LatencyHistogram& other) {
    if (other.counts_.size() > counts_.size()) {
      counts_.resize(other.counts_.size(), 0);
    }
    for (size_t i = 0; i < other.counts_.size(); ++i) {
      counts_[i] += other.counts_[i];
    }
    count_ += other.count_;
    sum_ += other.sum_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }

  /// Value at percentile `p` in (0, 100]: the lower bound of the first
  /// bucket whose cumulative count reaches ceil(p% of samples), clamped to
  /// the exact observed [min, max]. 0 when empty.
  uint64_t ValueAtPercentile(double p) const {
    if (count_ == 0) return 0;
    if (p >= 100.0) return max_;  // the maximum is tracked exactly
    const double want = p / 100.0 * static_cast<double>(count_);
    uint64_t target = static_cast<uint64_t>(want);
    if (static_cast<double>(target) < want) ++target;
    target = std::max<uint64_t>(target, 1);
    target = std::min(target, count_);
    uint64_t cumulative = 0;
    for (size_t i = 0; i < counts_.size(); ++i) {
      cumulative += counts_[i];
      if (cumulative >= target) {
        return std::clamp(BucketLowerBound(static_cast<uint32_t>(i)), min_,
                          max_);
      }
    }
    return max_;  // Unreachable: cumulative reaches count_ by the last bucket.
  }

  uint64_t p50() const { return ValueAtPercentile(50.0); }
  uint64_t p99() const { return ValueAtPercentile(99.0); }
  uint64_t p999() const { return ValueAtPercentile(99.9); }

  uint64_t count() const { return count_; }
  uint64_t sum() const { return sum_; }
  uint64_t min() const { return count_ == 0 ? 0 : min_; }
  uint64_t max() const { return max_; }
  double mean() const {
    return count_ == 0 ? 0.0
                       : static_cast<double>(sum_) / static_cast<double>(count_);
  }

  void Reset() {
    counts_.clear();
    count_ = 0;
    sum_ = 0;
    min_ = std::numeric_limits<uint64_t>::max();
    max_ = 0;
  }

  /// Exact distribution equality (trailing empty buckets ignored) -- the
  /// determinism checks compare whole histograms, not just percentiles.
  friend bool operator==(const LatencyHistogram& a, const LatencyHistogram& b) {
    if (a.count_ != b.count_ || a.sum_ != b.sum_ || a.max_ != b.max_) {
      return false;
    }
    if (a.count_ != 0 && a.min_ != b.min_) return false;
    const size_t n = std::max(a.counts_.size(), b.counts_.size());
    for (size_t i = 0; i < n; ++i) {
      const uint64_t av = i < a.counts_.size() ? a.counts_[i] : 0;
      const uint64_t bv = i < b.counts_.size() ? b.counts_[i] : 0;
      if (av != bv) return false;
    }
    return true;
  }

 private:
  std::vector<uint64_t> counts_;
  uint64_t count_ = 0;
  uint64_t sum_ = 0;
  uint64_t min_ = std::numeric_limits<uint64_t>::max();
  uint64_t max_ = 0;
};

}  // namespace flashdb::workload

#endif  // FLASHDB_WORKLOAD_LATENCY_HISTOGRAM_H_
