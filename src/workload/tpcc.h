// TPC-C-style workload for Experiment 7 (Fig. 18) and the concurrent OLTP
// serving layer (tpcc_driver.h).
//
// A self-contained, scaled implementation of the TPC-C schema (9 tables) and
// the five transaction types with the standard 45/43/4/4/4 mix, running on
// the flashdb storage engine (buffer pool + heap files + B+-tree indexes)
// over any page-update method. The paper ran TPC-C on the Odysseus ORDBMS;
// what Experiment 7 measures is the flash I/O time per transaction as the
// DBMS buffer is varied from 0.1% to 10% of the database size, which depends
// on the page access pattern, not on SQL processing -- hence this native
// implementation preserves the relevant behaviour (see DESIGN.md).
//
// Every transaction targets exactly one warehouse, and each instance may host
// a *subset* of the global warehouses: the multi-client driver places each
// warehouse's tables on the shard that owns it and routes whole transactions
// to the owning shard's worker. Construction with the full {1..W} list is
// draw-for-draw RNG-identical to the historical single-instance behaviour.
//
// Scale is configurable; defaults are shrunk so benches finish quickly while
// keeping the spec's relative table sizes and access skew.

#ifndef FLASHDB_WORKLOAD_TPCC_H_
#define FLASHDB_WORKLOAD_TPCC_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/random.h"
#include "storage/btree.h"
#include "storage/buffer_pool.h"
#include "storage/heap_file.h"

namespace flashdb::workload {

/// Scaled-down cardinalities (spec values in comments).
struct TpccScale {
  uint32_t warehouses = 2;
  uint32_t districts_per_warehouse = 10;  // spec: 10
  uint32_t customers_per_district = 120;  // spec: 3000
  uint32_t items = 2000;                  // spec: 100000
  uint32_t init_orders_per_district = 30; // spec: 3000
  /// Growth headroom: tables are sized so this many transactions can run
  /// after Load() without exhausting heap/index page budgets.
  uint32_t transaction_headroom = 10000;
};

/// The five transaction types of the standard mix.
enum class TpccTxnType : uint8_t {
  kNewOrder = 0,
  kPayment = 1,
  kOrderStatus = 2,
  kDelivery = 3,
  kStockLevel = 4,
};
inline constexpr uint32_t kNumTpccTxnTypes = 5;
const char* TpccTxnTypeName(TpccTxnType t);

/// Per-transaction-type counters.
struct TpccStats {
  uint64_t new_order = 0;
  uint64_t payment = 0;
  uint64_t order_status = 0;
  uint64_t delivery = 0;
  uint64_t stock_level = 0;
  uint64_t total() const {
    return new_order + payment + order_status + delivery + stock_level;
  }
};

/// See file comment.
class TpccWorkload {
 public:
  /// Hosts every warehouse 1..scale.warehouses. `pool` must sit on a
  /// formatted store large enough for the scale (RequiredPages()).
  TpccWorkload(storage::BufferPool* pool, const TpccScale& scale,
               uint64_t seed);

  /// Hosts only `warehouse_ids` (global ids in 1..scale.warehouses, given in
  /// hosting order). The ITEM table is replicated into every instance (it is
  /// read-only after load); WAREHOUSE/DISTRICT/CUSTOMER/STOCK/ORDER* rows
  /// exist only for the hosted warehouses. Page budgets shrink with the
  /// hosted count, so a shard's instance fits a shard-sized store.
  TpccWorkload(storage::BufferPool* pool, const TpccScale& scale,
               std::vector<uint32_t> warehouse_ids, uint64_t seed);

  /// Logical pages needed for tables + indexes at `scale` and `page_size`.
  static uint32_t RequiredPages(const TpccScale& scale, uint32_t page_size);

  /// Page budget for an instance hosting `hosted_warehouses` of the scale's
  /// warehouses (full ITEM table, per-warehouse tables scaled down).
  static uint32_t RequiredPagesHosted(const TpccScale& scale,
                                      uint32_t page_size,
                                      uint32_t hosted_warehouses);

  /// Draws one transaction type from the 45/43/4/4/4 mix (one Uniform(100)
  /// draw -- the same draw RunTransaction() has always used).
  static TpccTxnType PickTxnType(Random* rng);

  /// Creates tables/indexes and loads initial rows for the hosted
  /// warehouses.
  Status Load();

  /// Executes one transaction drawn from the standard mix against a
  /// uniformly drawn hosted warehouse.
  Status RunTransaction();

  /// RunTransaction() that also reports what it drew -- the legacy-path
  /// recorder for the driver's commit-order log. RNG consumption is
  /// draw-for-draw identical to RunTransaction().
  Status RunTransactionDrawing(TpccTxnType* type, uint32_t* warehouse);

  /// Executes one transaction of `type` against hosted warehouse `w` (the
  /// externally-routed form the multi-client driver uses; type and
  /// warehouse come from the client's RNG, everything inside the
  /// transaction from this instance's RNG).
  Status RunTransactionOfType(TpccTxnType type, uint32_t w);

  /// Executes `n` transactions.
  Status Run(uint64_t n);

  const TpccStats& stats() const { return stats_; }
  const TpccScale& scale() const { return scale_; }
  const std::vector<uint32_t>& warehouse_ids() const { return warehouse_ids_; }
  storage::BufferPool* pool() { return pool_; }

  // Individual transaction types (exposed for tests); each draws its target
  // warehouse uniformly from the hosted list.
  Status NewOrder();
  Status Payment();
  Status OrderStatus();
  Status Delivery();
  Status StockLevel();

  // Per-warehouse forms (`w` must be hosted).
  Status NewOrderAt(uint32_t w);
  Status PaymentAt(uint32_t w);
  Status OrderStatusAt(uint32_t w);
  Status DeliveryAt(uint32_t w);
  Status StockLevelAt(uint32_t w);

 private:
  struct Table {
    std::unique_ptr<storage::HeapFile> heap;
    std::unique_ptr<storage::BTree> index;
  };

  /// Carves `heap_pages` + `index_pages` out of the page range and registers
  /// the table.
  Table MakeTable(uint32_t heap_pages, uint32_t index_pages);

  // Key builders (packed composite keys over *global* warehouse ids).
  static uint64_t WKey(uint32_t w) { return w; }
  static uint64_t DKey(uint32_t w, uint32_t d) {
    return (static_cast<uint64_t>(w) << 8) | d;
  }
  static uint64_t CKey(uint32_t w, uint32_t d, uint32_t c) {
    return (static_cast<uint64_t>(w) << 40) |
           (static_cast<uint64_t>(d) << 32) | c;
  }
  static uint64_t OKey(uint32_t w, uint32_t d, uint32_t o) {
    return (static_cast<uint64_t>(w) << 40) |
           (static_cast<uint64_t>(d) << 32) | o;
  }
  static uint64_t OlKey(uint32_t w, uint32_t d, uint32_t o, uint32_t l) {
    return (static_cast<uint64_t>(w) << 48) |
           (static_cast<uint64_t>(d) << 40) |
           (static_cast<uint64_t>(o) << 8) | l;
  }
  static uint64_t SKey(uint32_t w, uint32_t i) {
    return (static_cast<uint64_t>(w) << 32) | i;
  }

  /// Uniform draw over the hosted warehouses. For the full {1..W} list this
  /// consumes the RNG exactly like the historical `1 + Uniform(W)`.
  uint32_t PickWarehouse();

  /// Slot of hosted warehouse `w` in per-(w,d) bookkeeping arrays; the
  /// hosting-order position, so the full list reproduces the legacy
  /// `(w - 1) * districts + (d - 1)` indexing bit-for-bit.
  uint32_t WdIndex(uint32_t w, uint32_t d) const {
    return w_slot_[w] * scale_.districts_per_warehouse + (d - 1);
  }

  // NURand-style skewed pick (spec 2.1.6 simplified).
  uint32_t PickCustomer();
  uint32_t PickItem();

  Status UpdateRow(Table& t, uint64_t key, ByteBuffer* row,
                   const std::function<void(ByteBuffer*)>& mutate);
  Status GetRow(const Table& t, uint64_t key, ByteBuffer* row);
  Status InsertRow(Table& t, uint64_t key, ConstBytes row);

  storage::BufferPool* pool_;
  TpccScale scale_;
  /// Hosted warehouses, in hosting order (the full 1..W range by default).
  std::vector<uint32_t> warehouse_ids_;
  /// Global warehouse id -> hosting-order slot (index into per-(w,d)
  /// arrays); sized warehouses + 1.
  std::vector<uint32_t> w_slot_;
  Random rng_;
  PageId next_page_ = 0;

  Table warehouse_;
  Table district_;
  Table customer_;
  Table history_;   // no index (append-only)
  Table new_order_;
  Table order_;
  Table order_line_;
  Table item_;
  Table stock_;

  /// Next order id per hosted (w,d); mirrors the district row's d_next_o_id.
  std::vector<uint32_t> next_o_id_;
  /// Oldest undelivered order per hosted (w,d).
  std::vector<uint32_t> next_delivery_o_id_;

  TpccStats stats_;
};

}  // namespace flashdb::workload

#endif  // FLASHDB_WORKLOAD_TPCC_H_
