// TPC-C-style workload for Experiment 7 (Fig. 18).
//
// A self-contained, scaled implementation of the TPC-C schema (9 tables) and
// the five transaction types with the standard 45/43/4/4/4 mix, running on
// the flashdb storage engine (buffer pool + heap files + B+-tree indexes)
// over any page-update method. The paper ran TPC-C on the Odysseus ORDBMS;
// what Experiment 7 measures is the flash I/O time per transaction as the
// DBMS buffer is varied from 0.1% to 10% of the database size, which depends
// on the page access pattern, not on SQL processing -- hence this native
// implementation preserves the relevant behaviour (see DESIGN.md).
//
// Scale is configurable; defaults are shrunk so benches finish quickly while
// keeping the spec's relative table sizes and access skew.

#ifndef FLASHDB_WORKLOAD_TPCC_H_
#define FLASHDB_WORKLOAD_TPCC_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/random.h"
#include "storage/btree.h"
#include "storage/buffer_pool.h"
#include "storage/heap_file.h"

namespace flashdb::workload {

/// Scaled-down cardinalities (spec values in comments).
struct TpccScale {
  uint32_t warehouses = 2;
  uint32_t districts_per_warehouse = 10;  // spec: 10
  uint32_t customers_per_district = 120;  // spec: 3000
  uint32_t items = 2000;                  // spec: 100000
  uint32_t init_orders_per_district = 30; // spec: 3000
  /// Growth headroom: tables are sized so this many transactions can run
  /// after Load() without exhausting heap/index page budgets.
  uint32_t transaction_headroom = 10000;
};

/// Per-transaction-type counters.
struct TpccStats {
  uint64_t new_order = 0;
  uint64_t payment = 0;
  uint64_t order_status = 0;
  uint64_t delivery = 0;
  uint64_t stock_level = 0;
  uint64_t total() const {
    return new_order + payment + order_status + delivery + stock_level;
  }
};

/// See file comment.
class TpccWorkload {
 public:
  /// `pool` must sit on a formatted store large enough for the scale
  /// (RequiredPages()).
  TpccWorkload(storage::BufferPool* pool, const TpccScale& scale,
               uint64_t seed);

  /// Logical pages needed for tables + indexes at `scale` and `page_size`.
  static uint32_t RequiredPages(const TpccScale& scale, uint32_t page_size);

  /// Creates tables/indexes and loads initial rows.
  Status Load();

  /// Executes one transaction drawn from the standard mix.
  Status RunTransaction();

  /// Executes `n` transactions.
  Status Run(uint64_t n);

  const TpccStats& stats() const { return stats_; }
  const TpccScale& scale() const { return scale_; }

  // Individual transaction types (exposed for tests).
  Status NewOrder();
  Status Payment();
  Status OrderStatus();
  Status Delivery();
  Status StockLevel();

 private:
  struct Table {
    std::unique_ptr<storage::HeapFile> heap;
    std::unique_ptr<storage::BTree> index;
  };

  /// Carves `heap_pages` + `index_pages` out of the page range and registers
  /// the table.
  Table MakeTable(uint32_t heap_pages, uint32_t index_pages);

  // Key builders (packed composite keys).
  static uint64_t WKey(uint32_t w) { return w; }
  static uint64_t DKey(uint32_t w, uint32_t d) {
    return (static_cast<uint64_t>(w) << 8) | d;
  }
  static uint64_t CKey(uint32_t w, uint32_t d, uint32_t c) {
    return (static_cast<uint64_t>(w) << 40) |
           (static_cast<uint64_t>(d) << 32) | c;
  }
  static uint64_t OKey(uint32_t w, uint32_t d, uint32_t o) {
    return (static_cast<uint64_t>(w) << 40) |
           (static_cast<uint64_t>(d) << 32) | o;
  }
  static uint64_t OlKey(uint32_t w, uint32_t d, uint32_t o, uint32_t l) {
    return (static_cast<uint64_t>(w) << 48) |
           (static_cast<uint64_t>(d) << 40) |
           (static_cast<uint64_t>(o) << 8) | l;
  }
  static uint64_t SKey(uint32_t w, uint32_t i) {
    return (static_cast<uint64_t>(w) << 32) | i;
  }

  // NURand-style skewed pick (spec 2.1.6 simplified).
  uint32_t PickCustomer();
  uint32_t PickItem();

  Status UpdateRow(Table& t, uint64_t key, ByteBuffer* row,
                   const std::function<void(ByteBuffer*)>& mutate);
  Status GetRow(const Table& t, uint64_t key, ByteBuffer* row);
  Status InsertRow(Table& t, uint64_t key, ConstBytes row);

  storage::BufferPool* pool_;
  TpccScale scale_;
  Random rng_;
  PageId next_page_ = 0;

  Table warehouse_;
  Table district_;
  Table customer_;
  Table history_;   // no index (append-only)
  Table new_order_;
  Table order_;
  Table order_line_;
  Table item_;
  Table stock_;

  /// Next order id per (w,d); mirrors the district row's d_next_o_id.
  std::vector<uint32_t> next_o_id_;
  /// Oldest undelivered order per (w,d).
  std::vector<uint32_t> next_delivery_o_id_;

  TpccStats stats_;
};

}  // namespace flashdb::workload

#endif  // FLASHDB_WORKLOAD_TPCC_H_
