// The synthetic workload driver of Section 5.1.
//
// An *update operation* follows the paper's definition: (1) read the
// addressed page (the reading step); (2) change the data in the page --
// `N_updates_till_write` in-memory update commands, each touching a random
// contiguous region of `%ChangedByOneU_Op` percent of the page; (3) write the
// updated page (the writing step). Experiments run these with the DBMS buffer
// excluded, so read/write/overall performance is measured directly.
//
// A *read-only operation* performs only the reading step. Experiment 4 mixes
// the two kinds with probability `%UpdateOps`.
//
// The driver tags device traffic with OpCategory::kReadStep / kWriteStep so
// harnesses can reproduce the paper's stacked breakdown; garbage collection
// performed inside the store is tagged kGc by the store itself and is
// amortized into the writing step when reported (as the paper does).

#ifndef FLASHDB_WORKLOAD_UPDATE_DRIVER_H_
#define FLASHDB_WORKLOAD_UPDATE_DRIVER_H_

#include <cstdint>
#include <vector>

#include "common/random.h"
#include "flash/flash_stats.h"
#include "ftl/page_store.h"

namespace flashdb::workload {

/// Parameters of the synthetic workload (Table 3).
struct WorkloadParams {
  double pct_changed_by_one_op = 2.0;  ///< %ChangedByOneU_Op
  uint32_t updates_till_write = 1;     ///< N_updates_till_write
  double pct_update_ops = 100.0;       ///< %UpdateOps (Exp. 4)
  uint64_t seed = 42;
  /// Maintain an in-memory shadow database and verify every page read
  /// against it (tests; costs RAM proportional to the database).
  bool verify = false;
};

/// Virtual-time breakdown of a measured run.
struct RunStats {
  uint64_t operations = 0;        ///< Operations executed (cycles + reads).
  uint64_t update_ops = 0;        ///< Of which update operations.
  flash::OpCounters read_step;    ///< Reading-step device traffic.
  flash::OpCounters write_step;   ///< Writing-step device traffic (no GC).
  flash::OpCounters gc;           ///< Garbage collection / merging traffic.
  uint64_t erases = 0;            ///< Total erase operations in the run.

  /// Paper-style per-operation figures (microseconds).
  double read_us_per_op() const {
    return operations == 0 ? 0 : static_cast<double>(read_step.total_us()) /
                                     static_cast<double>(operations);
  }
  /// GC is amortized into the write cost, as in Fig. 12b.
  double write_us_per_op() const {
    return operations == 0
               ? 0
               : static_cast<double>(write_step.total_us() + gc.total_us()) /
                     static_cast<double>(operations);
  }
  double overall_us_per_op() const {
    return read_us_per_op() + write_us_per_op();
  }
  double erases_per_op() const {
    return operations == 0
               ? 0
               : static_cast<double>(erases) / static_cast<double>(operations);
  }
};

/// See file comment.
class UpdateDriver {
 public:
  UpdateDriver(PageStore* store, const WorkloadParams& params);

  /// Loads the database: formats the store with pseudo-random page images.
  Status LoadDatabase(uint32_t num_pages);

  /// Runs update operations until every block has been erased
  /// `erases_per_block` times on average (steady state; the paper uses 10),
  /// or until `max_ops` operations, whichever first.
  Status Warmup(double erases_per_block, uint64_t max_ops);

  /// Runs `num_ops` operations (mixed per pct_update_ops) and accumulates
  /// into `*out` (which the caller zero-initializes).
  Status Run(uint64_t num_ops, RunStats* out);

  /// One full update operation against page `pid`.
  Status UpdateOperation(PageId pid);
  /// One read-only operation against page `pid`.
  Status ReadOperation(PageId pid);

  PageStore* store() { return store_; }
  Random& rng() { return rng_; }
  uint32_t num_pages() const { return num_pages_; }

 private:
  /// Applies one in-memory update command to `page`, notifying the store.
  Status ApplyOneUpdate(PageId pid, MutBytes page);

  PageStore* store_;
  WorkloadParams params_;
  Random rng_;
  uint32_t num_pages_ = 0;
  uint32_t data_size_;
  ByteBuffer scratch_;
  std::vector<ByteBuffer> shadow_;  ///< Only when params_.verify.
};

}  // namespace flashdb::workload

#endif  // FLASHDB_WORKLOAD_UPDATE_DRIVER_H_
