// The synthetic workload driver of Section 5.1.
//
// An *update operation* follows the paper's definition: (1) read the
// addressed page (the reading step); (2) change the data in the page --
// `N_updates_till_write` in-memory update commands, each touching a random
// contiguous region of `%ChangedByOneU_Op` percent of the page; (3) write the
// updated page (the writing step). Experiments run these with the DBMS buffer
// excluded, so read/write/overall performance is measured directly.
//
// A *read-only operation* performs only the reading step. Experiment 4 mixes
// the two kinds with probability `%UpdateOps`.
//
// The driver tags device traffic with OpCategory::kReadStep / kWriteStep so
// harnesses can reproduce the paper's stacked breakdown; garbage collection
// performed inside the store is tagged kGc by the store itself and is
// amortized into the writing step when reported (as the paper does).

#ifndef FLASHDB_WORKLOAD_UPDATE_DRIVER_H_
#define FLASHDB_WORKLOAD_UPDATE_DRIVER_H_

#include <cstdint>
#include <functional>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/random.h"
#include "flash/flash_stats.h"
#include "ftl/page_store.h"
#include "workload/latency_histogram.h"

namespace flashdb::ftl {
class ShardExecutor;
class ShardedStore;
}  // namespace flashdb::ftl

namespace flashdb::obs {
class MetricsRegistry;
class TraceShard;
}  // namespace flashdb::obs

namespace flashdb::workload {

/// Parameters of the synthetic workload (Table 3).
struct WorkloadParams {
  double pct_changed_by_one_op = 2.0;  ///< %ChangedByOneU_Op
  uint32_t updates_till_write = 1;     ///< N_updates_till_write
  double pct_update_ops = 100.0;       ///< %UpdateOps (Exp. 4)
  uint64_t seed = 42;
  /// Shard-targeted skew (beyond the paper): this percentage of operations
  /// draws its pid from shard 0's residue class (pid % num_shards == 0)
  /// instead of uniformly, turning shard 0 into a deliberate hotspot --
  /// exactly the one-slow-chip scenario pipelined execution is built to
  /// absorb. 0 (the default) keeps the uniform draw and consumes the RNG
  /// identically to older versions; ignored on a non-sharded store.
  double hot_shard_pct = 0.0;
  /// Wear-leveling epoch length for the scheduled modes (RunBatched /
  /// RunParallel / RunPipelined): every this-many operations the driver
  /// quiesces the shards at a window boundary, feeds the epoch's per-bucket
  /// write counts to the store's ShardRouter, and executes any bucket
  /// migrations the router plans -- then re-partitions the rest of the
  /// schedule under the new assignment. 0 (the default) disables epoch
  /// splitting entirely. Splitting applies whenever this is non-zero -- even
  /// with the router disabled, so leveling-off reference runs share the
  /// leveling-on runs' window boundaries -- but migrations only happen on a
  /// ShardedStore whose router has rebalancing enabled, at identical
  /// virtual-time points in all three modes (determinism is preserved).
  uint64_t rebalance_epoch_ops = 0;
  /// Maintain an in-memory shadow database and verify every page read
  /// against it (tests; costs RAM proportional to the database).
  bool verify = false;
  /// Background integrity scrub for the scheduled modes: at every epoch
  /// boundary (rebalance_epoch_ops windows -- scrub shares the rebalancer's
  /// quiescent boundaries and needs a non-zero epoch length) the driver
  /// drains the shards' scrub-candidate lists and relocates the flagged live
  /// pages (ShardedStore::ScrubShards). Deterministic across run modes;
  /// ignored on a non-sharded store.
  bool scrub = false;
  /// Sample every operation's virtual latency into RunStats::latency (and
  /// track the worst op with its per-cause breakdown). An op's latency is
  /// the advance of its owning chip's virtual clock from the op's start to
  /// its write-back completion. To give each queued write-back its own
  /// clock delta, the scheduled modes flush windows write-by-write
  /// (WriteBack) instead of as one WriteBatch -- on-flash state and virtual
  /// clocks are identical either way (the batched-write equivalence the
  /// tests pin down), so recording never changes any gated virtual-time
  /// column. Off by default to keep the WriteBatch fast path.
  bool record_latency = false;
  /// Optional metrics sink: when set, the scheduled run modes take an
  /// epoch-granular snapshot (ops, erases, clock, GC time) at every
  /// rebalance-epoch boundary -- the time-series half of the bench "metrics"
  /// object. Written only at quiescent boundaries, never on the hot path.
  obs::MetricsRegistry* metrics = nullptr;
};

/// The slowest operation of a run, with the per-cause breakdown of where its
/// virtual time went. Per-cause values are deltas of the owning chip's
/// by-category device counters across the op, so gc_us captures garbage
/// collection the op's write-back triggered, meta_us the journal traffic it
/// induced. Deterministic across the scheduled run modes: per-shard op order
/// is fixed by the schedule and the cross-shard fold visits shards in index
/// order, with a strictly-greater-wins rule so ties keep the first sample.
struct WorstOpSample {
  uint64_t total_us = 0;  ///< Virtual-clock advance across the whole op.
  uint64_t read_us = 0;   ///< Reading-step device time within the op.
  uint64_t write_us = 0;  ///< Writing-step device time (incl. log spills).
  uint64_t gc_us = 0;     ///< GC the op triggered inside the store.
  uint64_t meta_us = 0;   ///< Journal traffic the op induced.
  PageId pid = 0;         ///< Global pid of the op.
  bool valid = false;     ///< False until a first sample is offered.

  /// Keeps the stricter maximum: `cand` replaces *this only when strictly
  /// slower (first-seen wins ties, which makes the fold order-stable).
  void Offer(const WorstOpSample& cand) {
    if (cand.valid && (!valid || cand.total_us > total_us)) *this = cand;
  }

  friend bool operator==(const WorstOpSample& a,
                         const WorstOpSample& b) = default;
};

/// Virtual-time breakdown of a measured run.
struct RunStats {
  uint64_t operations = 0;        ///< Operations executed (cycles + reads).
  uint64_t update_ops = 0;        ///< Of which update operations.
  flash::OpCounters read_step;    ///< Reading-step device traffic.
  flash::OpCounters write_step;   ///< Writing-step device traffic (no GC).
  flash::OpCounters gc;           ///< Garbage collection / merging traffic.
  flash::OpCounters migrate;      ///< Wear-leveling migration traffic.
  flash::OpCounters meta;         ///< Durable-metadata journal traffic.
  flash::OpCounters scrub;        ///< Background scrub / relocation traffic.
  uint64_t migrations = 0;        ///< Bucket swaps committed during the run.
  uint64_t erases = 0;            ///< Total erase operations in the run.
  uint64_t scrub_candidates = 0;  ///< Flagged pages drained by scrub sweeps.
  uint64_t scrub_relocations = 0; ///< Live pages the scrubber rewrote.

  // --- Read-path integrity (delta of FlashStats::integrity) ---------------
  uint64_t read_retries = 0;        ///< Re-read attempts after a failed read.
  uint64_t retry_us = 0;            ///< Virtual time spent on those retries.
  uint64_t reads_corrected = 0;     ///< Reads clean only after retrying.
  uint64_t reads_uncorrectable = 0; ///< Reads corrupt after the full ladder.

  // --- Stall attribution --------------------------------------------------
  // Where an operation's virtual time went beyond the raw command latencies:
  // gc/migrate/meta above attribute induced device traffic; the two fields
  // below attribute waiting.
  /// Virtual time ops spent queued behind same-plane work while another
  /// plane of the chip was idle (delta of FlashStats::plane_stall_us over
  /// every chip). 0 on single-plane geometries.
  uint64_t plane_stall_us = 0;
  /// Virtual-clock advance across the run (max over chips): the denominator
  /// for device-parallel throughput, unlike the per-category sums which
  /// count every chip's busy time.
  uint64_t elapsed_vt_us = 0;
  /// Wall-clock nanoseconds the pipelined producer spent parked waiting for
  /// a per-shard credit (RunPipelined only; 0 elsewhere). Wall time, not
  /// virtual time: excluded from determinism comparisons.
  uint64_t credit_wait_ns = 0;

  // --- Per-operation latency (WorkloadParams::record_latency only) --------
  /// Distribution of per-op virtual latency in microseconds. Merged across
  /// shards by counter addition, so it is bit-identical across the
  /// sequential, batched, parallel, and pipelined executions of one
  /// schedule. Empty when recording is off. Epoch-boundary work (bucket
  /// migration, scrub sweeps, the migration journal) runs while the shards
  /// are quiescent and belongs to no operation, so it appears in the
  /// migrate/scrub/meta counters above but never in this distribution.
  LatencyHistogram latency;
  /// The run's slowest operation with per-cause attribution (see
  /// WorstOpSample). Invalid when recording is off.
  WorstOpSample worst_op;

  /// Paper-style per-operation figures (microseconds).
  double read_us_per_op() const {
    return operations == 0 ? 0 : static_cast<double>(read_step.total_us()) /
                                     static_cast<double>(operations);
  }
  /// GC is amortized into the write cost, as in Fig. 12b.
  double write_us_per_op() const {
    return operations == 0
               ? 0
               : static_cast<double>(write_step.total_us() + gc.total_us()) /
                     static_cast<double>(operations);
  }
  double overall_us_per_op() const {
    return read_us_per_op() + write_us_per_op();
  }
  /// Wear-leveling copy cost, reported separately from the paper-style
  /// read/write breakdown (the paper has no migration traffic).
  double migrate_us_per_op() const {
    return operations == 0 ? 0 : static_cast<double>(migrate.total_us()) /
                                     static_cast<double>(operations);
  }
  double erases_per_op() const {
    return operations == 0
               ? 0
               : static_cast<double>(erases) / static_cast<double>(operations);
  }
  /// Background-scrub cost, reported separately like migration.
  double scrub_us_per_op() const {
    return operations == 0 ? 0 : static_cast<double>(scrub.total_us()) /
                                     static_cast<double>(operations);
  }
  double retry_us_per_op() const {
    return operations == 0 ? 0 : static_cast<double>(retry_us) /
                                     static_cast<double>(operations);
  }
};

/// One pre-generated in-memory update command of a planned operation.
struct PlannedUpdate {
  uint32_t offset = 0;
  ByteBuffer data;
};

/// One planned operation: an update cycle (read + updates + write-back) or a
/// read-only operation, with every random choice already drawn.
struct PlannedOp {
  PageId pid = 0;
  bool is_update = true;
  std::vector<PlannedUpdate> updates;
};

/// A deterministic operation schedule. Pre-generating the schedule moves the
/// RNG off the measured path and -- more importantly -- fixes each shard's
/// operation subsequence up front, so threaded execution is exactly as
/// deterministic as sequential execution (thread interleaving cannot reorder
/// the ops any one chip sees).
using Schedule = std::vector<PlannedOp>;

/// See file comment.
class UpdateDriver {
 public:
  UpdateDriver(PageStore* store, const WorkloadParams& params);

  /// Loads the database: formats the store with pseudo-random page images.
  Status LoadDatabase(uint32_t num_pages);

  /// Runs update operations until every block has been erased
  /// `erases_per_block` times on average (steady state; the paper uses 10),
  /// or until `max_ops` operations, whichever first.
  Status Warmup(double erases_per_block, uint64_t max_ops);

  /// Runs `num_ops` operations (mixed per pct_update_ops) and accumulates
  /// into `*out` (which the caller zero-initializes).
  Status Run(uint64_t num_ops, RunStats* out);

  /// Pre-draws `num_ops` operations with exactly the distributions (and RNG
  /// consumption) of Run().
  Schedule MakeSchedule(uint64_t num_ops);

  /// Executes `schedule` through the batched WriteBatch path on the calling
  /// thread: per shard (or the whole store when it is not a ShardedStore),
  /// ops run in schedule order in windows of `batch_size`; each window's
  /// write-backs are queued and issued as one WriteBatch. Reads of a page
  /// with a queued write-back are served from the queued image, so
  /// read-after-write semantics match sequential execution. Accumulates into
  /// `*out`.
  Status RunBatched(const Schedule& schedule, uint32_t batch_size,
                    RunStats* out);

  /// Same execution as RunBatched, but each shard's windows are submitted to
  /// that shard's ShardExecutor worker and completion Statuses are gathered
  /// from the returned futures -- wall-clock parallelism across chips. The
  /// store must be a ShardedStore and `executor` must have at least
  /// num_shards() workers; per-shard device state, stats, and virtual clocks
  /// end up bit-identical to RunBatched on the same schedule.
  ///
  /// Submission is shard-sequential (all of shard 0's windows, then shard
  /// 1's, ...): with bounded executor rings a hot shard head-of-line blocks
  /// the producer and the remaining chips sit idle -- the steady-state
  /// weakness RunPipelined exists to remove.
  Status RunParallel(const Schedule& schedule, uint32_t batch_size,
                     ftl::ShardExecutor* executor, RunStats* out);

  /// Continuous submission mode: streams the schedule's windows round-robin
  /// across the shards, keeping at most `max_inflight` windows outstanding
  /// per shard (a per-shard credit counter, returned by completion callbacks
  /// on the worker threads -- no global join anywhere in the run). Windows of
  /// one shard are still submitted in schedule order, so per-shard device
  /// state, stats, and virtual clocks stay bit-identical to RunBatched /
  /// RunParallel on the same schedule; only the wall-clock interleaving
  /// across shards changes. On the first window error submission stops and
  /// the in-flight windows are drained before the error returns.
  /// `max_inflight` should not exceed the executor's ring capacity or
  /// submission degrades to blocking pushes.
  ///
  /// Unlike RunParallel, this mode does not need a ShardedStore: against a
  /// flat store the whole schedule is one stream fed depth-`max_inflight` to
  /// executor worker 0, giving the single-chip experiments a threaded run
  /// mode that is bit-identical to RunBatched on the same schedule (and,
  /// with batch_size 1, to the plain sequential Run() path).
  Status RunPipelined(const Schedule& schedule, uint32_t batch_size,
                      uint32_t max_inflight, ftl::ShardExecutor* executor,
                      RunStats* out);

  /// One full update operation against page `pid`.
  Status UpdateOperation(PageId pid);
  /// One read-only operation against page `pid`.
  Status ReadOperation(PageId pid);

  PageStore* store() { return store_; }
  Random& rng() { return rng_; }
  uint32_t num_pages() const { return num_pages_; }

  /// Wall-clock-domain trace lane (TraceRecorder::wall_lane()) for the
  /// pipelined producer's credit-wait events. Written only by the submitting
  /// thread; null disables. Per-shard virtual-time events attach one layer
  /// down via FlashDevice::set_trace.
  void set_wall_trace(obs::TraceShard* lane) { wall_trace_ = lane; }

 private:
  /// One shard's slice of a schedule plus its thread-confined execution
  /// state (scratch buffers and the queued write-back window).
  struct ShardStream {
    PageStore* store = nullptr;           ///< Inner store (thread-confined).
    std::vector<const PlannedOp*> ops;    ///< Slice, in schedule order.
    std::vector<PageId> inner_pids;       ///< Per-op pid inside the shard.
    std::vector<PageId> global_pids;      ///< Per-op pid for shadow lookups.

    struct QueuedWrite {
      PageId inner_pid = 0;
      ByteBuffer image;
      /// Latency recording only: the op's inline cost (reading step +
      /// in-memory updates' log spills), completed with the write-back
      /// delta at flush time.
      WorstOpSample cost;
      /// Latency recording only: the shard clock when the op began -- the
      /// kOpSpan timestamp, emitted when the write-back flushes.
      uint64_t start_us = 0;
    };
    ByteBuffer scratch;                    ///< Current page image.
    UpdateLog log_scratch;                 ///< Reused OnUpdate log.
    std::vector<QueuedWrite> queued;       ///< Window pool, reused per flush.
    size_t queued_n = 0;
    std::unordered_map<PageId, size_t> latest;  ///< inner pid -> queue slot.

    /// Latency recording only; thread-confined to the shard's worker like
    /// everything else here, folded into the driver's pending accumulators
    /// after the chunk quiesces.
    LatencyHistogram hist;
    WorstOpSample worst;
  };

  /// One contiguous slice of a schedule: the unit the epoch wrapper hands to
  /// the chunk runners, and the whole schedule when epochs are off.
  using ChunkSpan = std::span<const PlannedOp>;

  /// Splits `chunk` into per-shard streams (one stream for a flat store)
  /// using the store's *current* pid routing -- must be re-done after any
  /// bucket migration.
  std::vector<ShardStream> PartitionSchedule(ChunkSpan chunk);
  /// Point-in-time read of one chip's virtual clock and by-category time
  /// totals -- the before-side of a per-op latency sample.
  struct CostSnap {
    uint64_t clock_us = 0;
    uint64_t read_us = 0;
    uint64_t write_us = 0;
    uint64_t gc_us = 0;
    uint64_t meta_us = 0;
  };
  static CostSnap SnapCost(flash::FlashDevice* dev);
  /// Sample formed by the counter advance since `before` on the same chip.
  static WorstOpSample CostSince(const CostSnap& before,
                                 flash::FlashDevice* dev, PageId pid);
  /// Folds every stream's histogram and worst-op into the driver's pending
  /// accumulators, in shard-index order (order-stable ties). Caller must
  /// have quiesced the streams' workers first.
  void FoldStreamLatency(std::vector<ShardStream>* streams);
  /// Executes ops [begin, end) of `s` and flushes the queued write-backs.
  Status RunShardWindow(ShardStream* s, size_t begin, size_t end);
  Status FlushShardWindow(ShardStream* s);
  /// Virtual clock of the store: parallel_time_us() (max over chips) on a
  /// ShardedStore, the single chip's clock otherwise.
  uint64_t StoreClockUs() const;
  /// Folds the device-stats / clock delta and schedule counts into `*out`.
  void AccumulateRunStats(const flash::FlashStats& before, uint64_t clock0_us,
                          const Schedule& schedule, RunStats* out);

  /// The common run skeleton: snapshots stats, splits `schedule` into
  /// wear-leveling epochs (params_.rebalance_epoch_ops; one chunk when
  /// disabled), alternates `run_chunk` with RebalanceEpoch, and accumulates
  /// into `*out`. `executor` (may be null) executes migration copies.
  Status RunEpochs(const Schedule& schedule, ftl::ShardExecutor* executor,
                   RunStats* out,
                   const std::function<Status(ChunkSpan)>& run_chunk);
  /// Epoch boundary (shards quiescent): feeds the finished chunk's write
  /// heat to the router, plans against per-shard erase counts, and executes
  /// the planned bucket migrations.
  Status RebalanceEpoch(ChunkSpan chunk, ftl::ShardExecutor* executor,
                        RunStats* out);
  /// Epoch boundary (shards quiescent): drains and relocates the shards'
  /// scrub candidates (ShardedStore::ScrubShards).
  Status ScrubEpoch(RunStats* out);

  /// Mode bodies, one chunk at a time (validation and accounting live in the
  /// public wrappers / RunEpochs).
  Status RunBatchedChunk(ChunkSpan chunk, uint32_t batch_size);
  Status RunParallelChunk(ChunkSpan chunk, uint32_t batch_size,
                          ftl::ShardExecutor* executor);
  Status RunPipelinedChunk(ChunkSpan chunk, uint32_t batch_size,
                           uint32_t max_inflight,
                           ftl::ShardExecutor* executor);

  /// Applies one in-memory update command to `page`, notifying the store.
  Status ApplyOneUpdate(PageId pid, MutBytes page);
  /// Draws one update command (offset + payload) from the workload
  /// distribution. The single RNG consumer behind both Run()'s
  /// ApplyOneUpdate and MakeSchedule, so the two paths stay draw-for-draw
  /// identical by construction.
  void DrawUpdateCmd(uint32_t* offset, ByteBuffer* data);
  /// Draws the target pid of one operation -- uniform, or shard-0-skewed
  /// when params_.hot_shard_pct is set. The single pid source behind Run,
  /// Warmup, and MakeSchedule.
  PageId DrawPid();

  PageStore* store_;
  WorkloadParams params_;
  Random rng_;
  /// Pid stride of the hot residue class: num_shards() when hot_shard_pct
  /// is active on a sharded store, 0 when the draw is uniform.
  uint32_t hot_pid_stride_ = 0;
  uint32_t num_pages_ = 0;
  uint32_t data_size_;
  /// Cumulative wall time the pipelined producer spent parked on credits
  /// (only the submitting thread writes it; see RunStats::credit_wait_ns).
  uint64_t credit_wait_ns_ = 0;
  /// Wall lane for credit-wait trace events (see set_wall_trace).
  obs::TraceShard* wall_trace_ = nullptr;
  /// Latency samples of the run in progress, reset at the start of every
  /// public run entry point and folded into the caller's RunStats at the
  /// end (see AccumulateRunStats). Only the submitting thread touches them.
  LatencyHistogram pending_latency_;
  WorstOpSample pending_worst_;
  ByteBuffer scratch_;
  std::vector<ByteBuffer> shadow_;  ///< Only when params_.verify.
};

}  // namespace flashdb::workload

#endif  // FLASHDB_WORKLOAD_UPDATE_DRIVER_H_
