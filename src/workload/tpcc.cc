#include "workload/tpcc.h"

#include <algorithm>
#include <cassert>
#include <numeric>
#include <set>

#include "common/coding.h"

namespace flashdb::workload {

using storage::BTree;
using storage::HeapFile;
using storage::Rid;

namespace {
// Approximate row widths (bytes). The numeric hot fields live at fixed
// offsets in a prefix; the remainder is immutable filler standing in for the
// spec's character columns, so updates touch small regions (as in a real
// row-store) while rows occupy realistic space.
constexpr uint32_t kWarehouseRow = 96;   // spec ~89 B
constexpr uint32_t kDistrictRow = 104;   // spec ~95 B
constexpr uint32_t kCustomerRow = 360;   // spec ~655 B (scaled)
constexpr uint32_t kHistoryRow = 48;     // spec ~46 B
constexpr uint32_t kNewOrderRow = 12;    // spec 8 B
constexpr uint32_t kOrderRow = 32;       // spec ~24 B
constexpr uint32_t kOrderLineRow = 56;   // spec ~54 B
constexpr uint32_t kItemRow = 88;        // spec ~82 B
constexpr uint32_t kStockRow = 160;      // spec ~306 B (scaled)

constexpr uint32_t kSlotOverhead = 4;
constexpr uint32_t kPageHeader = 12;
constexpr uint32_t kLeafEntryBytes = 16;

uint32_t HeapPagesFor(uint64_t rows, uint32_t row_bytes, uint32_t page_size) {
  const uint32_t per_page =
      std::max<uint32_t>(1, (page_size - kPageHeader) /
                                (row_bytes + kSlotOverhead));
  const uint64_t pages = (rows + per_page - 1) / per_page;
  return static_cast<uint32_t>(pages + pages / 4 + 2);  // 25% slack
}

uint32_t IndexPagesFor(uint64_t keys, uint32_t page_size) {
  const uint32_t leaf_cap =
      std::max<uint32_t>(1, (page_size - kPageHeader) / kLeafEntryBytes);
  const uint64_t leaves = keys / leaf_cap + 1;
  // Split-produced leaves run ~50-70% full under appending inserts, so
  // budget twice the densely-packed estimate, plus internals and the meta
  // page.
  return static_cast<uint32_t>(2 * leaves + leaves / 4 + 8);
}

struct Layout {
  uint32_t warehouse_h, warehouse_i;
  uint32_t district_h, district_i;
  uint32_t customer_h, customer_i;
  uint32_t history_h;
  uint32_t new_order_h, new_order_i;
  uint32_t order_h, order_i;
  uint32_t order_line_h, order_line_i;
  uint32_t item_h, item_i;
  uint32_t stock_h, stock_i;

  uint32_t total() const {
    return warehouse_h + warehouse_i + district_h + district_i + customer_h +
           customer_i + history_h + new_order_h + new_order_i + order_h +
           order_i + order_line_h + order_line_i + item_h + item_i + stock_h +
           stock_i;
  }
};

/// Table layout for an instance hosting `hosted` warehouses. The ITEM table
/// stays full size (replicated read-only); the transaction_headroom is NOT
/// scaled down -- under skewed routing one shard can receive nearly every
/// transaction, so each instance keeps the full growth budget.
Layout ComputeLayout(const TpccScale& s, uint32_t page_size, uint32_t hosted) {
  const uint64_t wd = static_cast<uint64_t>(hosted) *
                      s.districts_per_warehouse;
  const uint64_t customers = wd * s.customers_per_district;
  const uint64_t init_orders = wd * s.init_orders_per_district;
  const uint64_t orders = init_orders + s.transaction_headroom;
  const uint64_t order_lines = orders * 15;
  const uint64_t stock = static_cast<uint64_t>(hosted) * s.items;
  Layout l{};
  l.warehouse_h = HeapPagesFor(hosted, kWarehouseRow, page_size);
  l.warehouse_i = IndexPagesFor(hosted, page_size);
  l.district_h = HeapPagesFor(wd, kDistrictRow, page_size);
  l.district_i = IndexPagesFor(wd, page_size);
  l.customer_h = HeapPagesFor(customers, kCustomerRow, page_size);
  l.customer_i = IndexPagesFor(customers, page_size);
  l.history_h = HeapPagesFor(orders, kHistoryRow, page_size);
  l.new_order_h = HeapPagesFor(orders, kNewOrderRow, page_size);
  l.new_order_i = IndexPagesFor(orders, page_size);
  l.order_h = HeapPagesFor(orders, kOrderRow, page_size);
  l.order_i = IndexPagesFor(orders, page_size);
  l.order_line_h = HeapPagesFor(order_lines, kOrderLineRow, page_size);
  l.order_line_i = IndexPagesFor(order_lines, page_size);
  l.item_h = HeapPagesFor(s.items, kItemRow, page_size);
  l.item_i = IndexPagesFor(s.items, page_size);
  l.stock_h = HeapPagesFor(stock, kStockRow, page_size);
  l.stock_i = IndexPagesFor(stock, page_size);
  return l;
}

/// Builds a row: numeric prefix fields followed by pseudo-random filler.
ByteBuffer MakeRow(uint32_t size, Random* rng,
                   std::initializer_list<uint64_t> prefix_u64,
                   std::initializer_list<uint32_t> prefix_u32 = {}) {
  ByteBuffer row(size, 0);
  size_t off = 0;
  for (uint64_t v : prefix_u64) {
    EncodeFixed64(row.data() + off, v);
    off += 8;
  }
  for (uint32_t v : prefix_u32) {
    EncodeFixed32(row.data() + off, v);
    off += 4;
  }
  rng->Fill(MutBytes(row.data() + off, size - off));
  return row;
}

std::vector<uint32_t> FullWarehouseRange(uint32_t warehouses) {
  std::vector<uint32_t> ids(warehouses);
  std::iota(ids.begin(), ids.end(), 1u);
  return ids;
}
}  // namespace

const char* TpccTxnTypeName(TpccTxnType t) {
  switch (t) {
    case TpccTxnType::kNewOrder: return "new_order";
    case TpccTxnType::kPayment: return "payment";
    case TpccTxnType::kOrderStatus: return "order_status";
    case TpccTxnType::kDelivery: return "delivery";
    case TpccTxnType::kStockLevel: return "stock_level";
  }
  return "?";
}

TpccWorkload::TpccWorkload(storage::BufferPool* pool, const TpccScale& scale,
                           uint64_t seed)
    : TpccWorkload(pool, scale, FullWarehouseRange(scale.warehouses), seed) {}

TpccWorkload::TpccWorkload(storage::BufferPool* pool, const TpccScale& scale,
                           std::vector<uint32_t> warehouse_ids, uint64_t seed)
    : pool_(pool),
      scale_(scale),
      warehouse_ids_(std::move(warehouse_ids)),
      rng_(seed) {
  assert(!warehouse_ids_.empty());
  w_slot_.assign(scale_.warehouses + 1, 0);
  for (uint32_t i = 0; i < warehouse_ids_.size(); ++i) {
    assert(warehouse_ids_[i] >= 1 && warehouse_ids_[i] <= scale_.warehouses);
    w_slot_[warehouse_ids_[i]] = i;
  }
  const uint64_t wd = static_cast<uint64_t>(warehouse_ids_.size()) *
                      scale_.districts_per_warehouse;
  next_o_id_.assign(wd, scale_.init_orders_per_district + 1);
  next_delivery_o_id_.assign(wd, scale_.init_orders_per_district * 2 / 3 + 1);
}

uint32_t TpccWorkload::RequiredPages(const TpccScale& scale,
                                     uint32_t page_size) {
  return ComputeLayout(scale, page_size, scale.warehouses).total();
}

uint32_t TpccWorkload::RequiredPagesHosted(const TpccScale& scale,
                                           uint32_t page_size,
                                           uint32_t hosted_warehouses) {
  return ComputeLayout(scale, page_size, hosted_warehouses).total();
}

TpccTxnType TpccWorkload::PickTxnType(Random* rng) {
  const uint32_t pick = static_cast<uint32_t>(rng->Uniform(100));
  if (pick < 45) return TpccTxnType::kNewOrder;
  if (pick < 88) return TpccTxnType::kPayment;
  if (pick < 92) return TpccTxnType::kOrderStatus;
  if (pick < 96) return TpccTxnType::kDelivery;
  return TpccTxnType::kStockLevel;
}

TpccWorkload::Table TpccWorkload::MakeTable(uint32_t heap_pages,
                                            uint32_t index_pages) {
  Table t;
  t.heap = std::make_unique<HeapFile>(pool_, next_page_, heap_pages);
  next_page_ += heap_pages;
  if (index_pages > 0) {
    t.index = std::make_unique<BTree>(pool_, next_page_, index_pages);
    next_page_ += index_pages;
  }
  return t;
}

Status TpccWorkload::GetRow(const Table& t, uint64_t key, ByteBuffer* row) {
  FLASHDB_ASSIGN_OR_RETURN(uint64_t enc, t.index->Get(key));
  return t.heap->Get(Rid::Decode(enc), row);
}

Status TpccWorkload::InsertRow(Table& t, uint64_t key, ConstBytes row) {
  FLASHDB_ASSIGN_OR_RETURN(Rid rid, t.heap->Insert(row));
  return t.index->Insert(key, rid.Encode());
}

Status TpccWorkload::UpdateRow(Table& t, uint64_t key, ByteBuffer* row,
                               const std::function<void(ByteBuffer*)>& mutate) {
  FLASHDB_ASSIGN_OR_RETURN(uint64_t enc, t.index->Get(key));
  const Rid rid = Rid::Decode(enc);
  FLASHDB_RETURN_IF_ERROR(t.heap->Get(rid, row));
  mutate(row);
  return t.heap->Update(rid, *row);
}

Status TpccWorkload::Load() {
  const uint32_t page_size = pool_->store()->device()->geometry().data_size;
  const Layout l = ComputeLayout(
      scale_, page_size, static_cast<uint32_t>(warehouse_ids_.size()));
  next_page_ = 0;
  warehouse_ = MakeTable(l.warehouse_h, l.warehouse_i);
  district_ = MakeTable(l.district_h, l.district_i);
  customer_ = MakeTable(l.customer_h, l.customer_i);
  history_ = MakeTable(l.history_h, 0);
  new_order_ = MakeTable(l.new_order_h, l.new_order_i);
  order_ = MakeTable(l.order_h, l.order_i);
  order_line_ = MakeTable(l.order_line_h, l.order_line_i);
  item_ = MakeTable(l.item_h, l.item_i);
  stock_ = MakeTable(l.stock_h, l.stock_i);

  for (Table* t : {&warehouse_, &district_, &customer_, &history_, &new_order_,
                   &order_, &order_line_, &item_, &stock_}) {
    FLASHDB_RETURN_IF_ERROR(t->heap->Create());
    if (t->index) FLASHDB_RETURN_IF_ERROR(t->index->Create());
  }

  // WAREHOUSE / DISTRICT / CUSTOMER.
  for (uint32_t w : warehouse_ids_) {
    // w_ytd at offset 0.
    FLASHDB_RETURN_IF_ERROR(InsertRow(
        warehouse_, WKey(w), MakeRow(kWarehouseRow, &rng_, {300000ULL})));
    for (uint32_t d = 1; d <= scale_.districts_per_warehouse; ++d) {
      // d_ytd @0 (u64), d_next_o_id @8 (u32).
      FLASHDB_RETURN_IF_ERROR(InsertRow(
          district_, DKey(w, d),
          MakeRow(kDistrictRow, &rng_, {30000ULL},
                  {scale_.init_orders_per_district + 1})));
      for (uint32_t c = 1; c <= scale_.customers_per_district; ++c) {
        // c_balance @0 (u64, biased so it never underflows), c_payments @8.
        FLASHDB_RETURN_IF_ERROR(
            InsertRow(customer_, CKey(w, d, c),
                      MakeRow(kCustomerRow, &rng_, {1u << 20, 0ULL})));
      }
    }
  }
  // ITEM (full, read-only after load: replicated into every instance) /
  // STOCK (hosted warehouses only).
  for (uint32_t i = 1; i <= scale_.items; ++i) {
    // i_price @0.
    FLASHDB_RETURN_IF_ERROR(InsertRow(
        item_, i, MakeRow(kItemRow, &rng_, {rng_.Range(100, 10000)})));
  }
  for (uint32_t w : warehouse_ids_) {
    for (uint32_t i = 1; i <= scale_.items; ++i) {
      // s_quantity @0 (u32), s_ytd @4 (u32), s_order_cnt @8 (u32).
      FLASHDB_RETURN_IF_ERROR(
          InsertRow(stock_, SKey(w, i),
                    MakeRow(kStockRow, &rng_, {},
                            {static_cast<uint32_t>(rng_.Range(10, 100)), 0u,
                             0u})));
    }
  }
  // Initial ORDER / ORDER-LINE / NEW-ORDER rows.
  for (uint32_t w : warehouse_ids_) {
    for (uint32_t d = 1; d <= scale_.districts_per_warehouse; ++d) {
      for (uint32_t o = 1; o <= scale_.init_orders_per_district; ++o) {
        const uint32_t c =
            static_cast<uint32_t>(rng_.Range(1, scale_.customers_per_district));
        const uint32_t ol_cnt = static_cast<uint32_t>(rng_.Range(5, 15));
        const bool delivered = o <= scale_.init_orders_per_district * 2 / 3;
        // o_c_id @0, o_carrier_id @4, o_ol_cnt @8 (u32 each).
        FLASHDB_RETURN_IF_ERROR(InsertRow(
            order_, OKey(w, d, o),
            MakeRow(kOrderRow, &rng_, {},
                    {c, delivered ? 1u + static_cast<uint32_t>(rng_.Uniform(10))
                                  : 0u,
                     ol_cnt})));
        for (uint32_t ln = 1; ln <= ol_cnt; ++ln) {
          const uint32_t i = PickItem();
          // ol_i_id @0, ol_amount @4, ol_delivery_d @8.
          FLASHDB_RETURN_IF_ERROR(InsertRow(
              order_line_, OlKey(w, d, o, ln),
              MakeRow(kOrderLineRow, &rng_, {},
                      {i, static_cast<uint32_t>(rng_.Range(1, 9999)),
                       delivered ? 1u : 0u})));
        }
        if (!delivered) {
          FLASHDB_RETURN_IF_ERROR(InsertRow(new_order_, OKey(w, d, o),
                                            MakeRow(kNewOrderRow, &rng_, {},
                                                    {o})));
        }
      }
    }
  }
  return pool_->FlushAll();
}

uint32_t TpccWorkload::PickWarehouse() {
  return warehouse_ids_[static_cast<size_t>(
      rng_.Uniform(warehouse_ids_.size()))];
}

uint32_t TpccWorkload::PickCustomer() {
  // NURand(1023, 1, C) per spec 2.1.6 with C-run constant 123.
  const uint32_t c = scale_.customers_per_district;
  const uint32_t a = static_cast<uint32_t>(rng_.Uniform(1024));
  const uint32_t b = 1 + static_cast<uint32_t>(rng_.Uniform(c));
  return ((a | b) + 123) % c + 1;
}

uint32_t TpccWorkload::PickItem() {
  const uint32_t n = scale_.items;
  const uint32_t a = static_cast<uint32_t>(rng_.Uniform(8192));
  const uint32_t b = 1 + static_cast<uint32_t>(rng_.Uniform(n));
  return ((a | b) + 987) % n + 1;
}

Status TpccWorkload::NewOrder() { return NewOrderAt(PickWarehouse()); }

Status TpccWorkload::NewOrderAt(uint32_t w) {
  const uint32_t d =
      1 + static_cast<uint32_t>(rng_.Uniform(scale_.districts_per_warehouse));
  const uint32_t c = PickCustomer();
  const uint32_t wd_idx = WdIndex(w, d);
  ByteBuffer row;
  // Warehouse tax (read).
  FLASHDB_RETURN_IF_ERROR(GetRow(warehouse_, WKey(w), &row));
  // District: read + advance d_next_o_id.
  FLASHDB_RETURN_IF_ERROR(
      UpdateRow(district_, DKey(w, d), &row, [&](ByteBuffer* r) {
        EncodeFixed32(r->data() + 8, DecodeFixed32(r->data() + 8) + 1);
      }));
  // Customer discount/credit (read).
  FLASHDB_RETURN_IF_ERROR(GetRow(customer_, CKey(w, d, c), &row));

  const uint32_t o = next_o_id_[wd_idx]++;
  const uint32_t ol_cnt = static_cast<uint32_t>(rng_.Range(5, 15));
  FLASHDB_RETURN_IF_ERROR(InsertRow(
      order_, OKey(w, d, o), MakeRow(kOrderRow, &rng_, {}, {c, 0u, ol_cnt})));
  FLASHDB_RETURN_IF_ERROR(InsertRow(new_order_, OKey(w, d, o),
                                    MakeRow(kNewOrderRow, &rng_, {}, {o})));
  for (uint32_t ln = 1; ln <= ol_cnt; ++ln) {
    const uint32_t i = PickItem();
    const uint32_t qty = 1 + static_cast<uint32_t>(rng_.Uniform(10));
    FLASHDB_RETURN_IF_ERROR(GetRow(item_, i, &row));
    const uint32_t price = DecodeFixed32(row.data());
    // Stock: decrement quantity, bump ytd / order count.
    FLASHDB_RETURN_IF_ERROR(
        UpdateRow(stock_, SKey(w, i), &row, [&](ByteBuffer* r) {
          uint32_t q = DecodeFixed32(r->data());
          q = q >= qty + 10 ? q - qty : q + 91 - qty;
          EncodeFixed32(r->data(), q);
          EncodeFixed32(r->data() + 4, DecodeFixed32(r->data() + 4) + qty);
          EncodeFixed32(r->data() + 8, DecodeFixed32(r->data() + 8) + 1);
        }));
    FLASHDB_RETURN_IF_ERROR(
        InsertRow(order_line_, OlKey(w, d, o, ln),
                  MakeRow(kOrderLineRow, &rng_, {}, {i, price * qty, 0u})));
  }
  stats_.new_order++;
  return Status::OK();
}

Status TpccWorkload::Payment() { return PaymentAt(PickWarehouse()); }

Status TpccWorkload::PaymentAt(uint32_t w) {
  const uint32_t d =
      1 + static_cast<uint32_t>(rng_.Uniform(scale_.districts_per_warehouse));
  const uint32_t c = PickCustomer();
  const uint64_t amount = rng_.Range(100, 500000);
  ByteBuffer row;
  FLASHDB_RETURN_IF_ERROR(
      UpdateRow(warehouse_, WKey(w), &row, [&](ByteBuffer* r) {
        EncodeFixed64(r->data(), DecodeFixed64(r->data()) + amount);
      }));
  FLASHDB_RETURN_IF_ERROR(
      UpdateRow(district_, DKey(w, d), &row, [&](ByteBuffer* r) {
        EncodeFixed64(r->data(), DecodeFixed64(r->data()) + amount);
      }));
  FLASHDB_RETURN_IF_ERROR(
      UpdateRow(customer_, CKey(w, d, c), &row, [&](ByteBuffer* r) {
        EncodeFixed64(r->data(), DecodeFixed64(r->data()) + amount);
        EncodeFixed64(r->data() + 8, DecodeFixed64(r->data() + 8) + 1);
      }));
  FLASHDB_ASSIGN_OR_RETURN(
      Rid rid, history_.heap->Insert(
                   MakeRow(kHistoryRow, &rng_, {amount},
                           {w, d, c})));
  (void)rid;
  stats_.payment++;
  return Status::OK();
}

Status TpccWorkload::OrderStatus() { return OrderStatusAt(PickWarehouse()); }

Status TpccWorkload::OrderStatusAt(uint32_t w) {
  const uint32_t d =
      1 + static_cast<uint32_t>(rng_.Uniform(scale_.districts_per_warehouse));
  const uint32_t c = PickCustomer();
  const uint32_t wd_idx = WdIndex(w, d);
  ByteBuffer row;
  FLASHDB_RETURN_IF_ERROR(GetRow(customer_, CKey(w, d, c), &row));
  const uint32_t next = next_o_id_[wd_idx];
  if (next <= 1) {
    stats_.order_status++;
    return Status::OK();
  }
  const uint32_t lo = next > 20 ? next - 20 : 1;
  const uint32_t o = static_cast<uint32_t>(rng_.Range(lo, next - 1));
  FLASHDB_RETURN_IF_ERROR(GetRow(order_, OKey(w, d, o), &row));
  // Read the order's lines via an index range scan.
  FLASHDB_RETURN_IF_ERROR(order_line_.index->Scan(
      OlKey(w, d, o, 0), OlKey(w, d, o, 255),
      [&](uint64_t, uint64_t enc) {
        ByteBuffer line;
        return order_line_.heap->Get(Rid::Decode(enc), &line);
      }));
  stats_.order_status++;
  return Status::OK();
}

Status TpccWorkload::Delivery() { return DeliveryAt(PickWarehouse()); }

Status TpccWorkload::DeliveryAt(uint32_t w) {
  ByteBuffer row;
  for (uint32_t d = 1; d <= scale_.districts_per_warehouse; ++d) {
    const uint32_t wd_idx = WdIndex(w, d);
    const uint32_t o = next_delivery_o_id_[wd_idx];
    if (o >= next_o_id_[wd_idx]) continue;  // nothing undelivered
    // Pop the NEW-ORDER row.
    Result<uint64_t> enc = new_order_.index->Get(OKey(w, d, o));
    if (enc.ok()) {
      FLASHDB_RETURN_IF_ERROR(new_order_.heap->Delete(Rid::Decode(*enc)));
      FLASHDB_RETURN_IF_ERROR(new_order_.index->Delete(OKey(w, d, o)));
    }
    next_delivery_o_id_[wd_idx] = o + 1;
    // Stamp the carrier on the order; learn its customer and line count.
    uint32_t c = 0;
    uint32_t ol_cnt = 0;
    FLASHDB_RETURN_IF_ERROR(
        UpdateRow(order_, OKey(w, d, o), &row, [&](ByteBuffer* r) {
          c = DecodeFixed32(r->data());
          ol_cnt = DecodeFixed32(r->data() + 8);
          EncodeFixed32(r->data() + 4,
                        1 + static_cast<uint32_t>(rng_.Uniform(10)));
        }));
    // Stamp delivery dates on the lines and sum the amounts.
    uint64_t total = 0;
    for (uint32_t ln = 1; ln <= ol_cnt; ++ln) {
      FLASHDB_RETURN_IF_ERROR(
          UpdateRow(order_line_, OlKey(w, d, o, ln), &row, [&](ByteBuffer* r) {
            total += DecodeFixed32(r->data() + 4);
            EncodeFixed32(r->data() + 8, 1);
          }));
    }
    // Credit the customer.
    FLASHDB_RETURN_IF_ERROR(
        UpdateRow(customer_, CKey(w, d, c), &row, [&](ByteBuffer* r) {
          EncodeFixed64(r->data(), DecodeFixed64(r->data()) + total);
        }));
  }
  stats_.delivery++;
  return Status::OK();
}

Status TpccWorkload::StockLevel() { return StockLevelAt(PickWarehouse()); }

Status TpccWorkload::StockLevelAt(uint32_t w) {
  const uint32_t d =
      1 + static_cast<uint32_t>(rng_.Uniform(scale_.districts_per_warehouse));
  const uint32_t wd_idx = WdIndex(w, d);
  const uint32_t threshold = static_cast<uint32_t>(rng_.Range(10, 20));
  ByteBuffer row;
  FLASHDB_RETURN_IF_ERROR(GetRow(district_, DKey(w, d), &row));
  const uint32_t next = next_o_id_[wd_idx];
  const uint32_t lo = next > 20 ? next - 20 : 1;
  std::set<uint32_t> items;
  for (uint32_t o = lo; o < next; ++o) {
    FLASHDB_RETURN_IF_ERROR(order_line_.index->Scan(
        OlKey(w, d, o, 0), OlKey(w, d, o, 255),
        [&](uint64_t, uint64_t enc) {
          ByteBuffer line;
          FLASHDB_RETURN_IF_ERROR(order_line_.heap->Get(Rid::Decode(enc),
                                                        &line));
          items.insert(DecodeFixed32(line.data()));
          return Status::OK();
        }));
  }
  uint32_t low_count = 0;
  for (uint32_t i : items) {
    FLASHDB_RETURN_IF_ERROR(GetRow(stock_, SKey(w, i), &row));
    if (DecodeFixed32(row.data()) < threshold) ++low_count;
  }
  (void)low_count;
  stats_.stock_level++;
  return Status::OK();
}

Status TpccWorkload::RunTransactionOfType(TpccTxnType type, uint32_t w) {
  switch (type) {
    case TpccTxnType::kNewOrder: return NewOrderAt(w);
    case TpccTxnType::kPayment: return PaymentAt(w);
    case TpccTxnType::kOrderStatus: return OrderStatusAt(w);
    case TpccTxnType::kDelivery: return DeliveryAt(w);
    case TpccTxnType::kStockLevel: return StockLevelAt(w);
  }
  return Status::InvalidArgument("unknown transaction type");
}

Status TpccWorkload::RunTransaction() {
  TpccTxnType type;
  uint32_t w;
  return RunTransactionDrawing(&type, &w);
}

Status TpccWorkload::RunTransactionDrawing(TpccTxnType* type,
                                           uint32_t* warehouse) {
  // Draw order matches the historical RunTransaction() exactly: the mix pick
  // first, then the target warehouse as the transaction's first own draw.
  *type = PickTxnType(&rng_);
  *warehouse = PickWarehouse();
  return RunTransactionOfType(*type, *warehouse);
}

Status TpccWorkload::Run(uint64_t n) {
  for (uint64_t i = 0; i < n; ++i) FLASHDB_RETURN_IF_ERROR(RunTransaction());
  return Status::OK();
}

}  // namespace flashdb::workload
