#include "workload/tpcc_driver.h"

#include <atomic>
#include <cassert>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>

#include "flash/flash_device.h"
#include "obs/trace_recorder.h"

namespace flashdb::workload {

namespace {
/// Per-shard workload seed stride (shard 0 keeps the base seed, which is
/// what makes legacy_single_stream draw-for-draw exp7-compatible); clients
/// use a different odd constant so their streams never collide with a
/// shard's.
constexpr uint64_t kShardSeedStride = 0x9e3779b97f4a7c15ULL;
constexpr uint64_t kClientSeedStride = 0xd1b54a32d192ed03ULL;
}  // namespace

TpccDriver::TpccDriver(ftl::ShardedStore* store, const TpccDriverOptions& opts)
    : store_(store), opts_(opts) {
  const uint32_t num_shards = store_->num_shards();
  assert(num_shards >= 1 && num_shards <= opts_.scale.warehouses);
  shards_.resize(num_shards);
  for (uint32_t s = 0; s < num_shards; ++s) {
    std::vector<uint32_t> hosted;
    for (uint32_t w = s + 1; w <= opts_.scale.warehouses; w += num_shards) {
      hosted.push_back(w);
    }
    ShardState& sh = shards_[s];
    sh.pool = std::make_unique<storage::BufferPool>(store_->shard(s),
                                                    opts_.frames_per_shard);
    sh.workload = std::make_unique<TpccWorkload>(
        sh.pool.get(), opts_.scale, std::move(hosted),
        opts_.seed + kShardSeedStride * s);
  }
  client_rngs_.reserve(opts_.num_clients);
  for (uint32_t c = 0; c < opts_.num_clients; ++c) {
    client_rngs_.emplace_back(opts_.seed + kClientSeedStride * (c + 1));
  }
}

uint32_t TpccDriver::PagesPerShard(const TpccScale& scale, uint32_t page_size,
                                   uint32_t num_shards) {
  const uint32_t fullest =
      (scale.warehouses + num_shards - 1) / num_shards;
  return TpccWorkload::RequiredPagesHosted(scale, page_size, fullest);
}

TpccDriver::CostSnap TpccDriver::SnapCost(flash::FlashDevice* dev) {
  const flash::FlashStats& st = dev->stats();
  CostSnap snap;
  snap.clock_us = dev->clock().now_us();
  snap.read_us =
      st.by_category[static_cast<int>(flash::OpCategory::kReadStep)].total_us();
  snap.write_us =
      st.by_category[static_cast<int>(flash::OpCategory::kWriteStep)]
          .total_us();
  snap.gc_us =
      st.by_category[static_cast<int>(flash::OpCategory::kGc)].total_us();
  snap.meta_us =
      st.by_category[static_cast<int>(flash::OpCategory::kMeta)].total_us();
  return snap;
}

WorstOpSample TpccDriver::CostSince(const CostSnap& before,
                                    flash::FlashDevice* dev, PageId pid) {
  const CostSnap after = SnapCost(dev);
  WorstOpSample s;
  s.total_us = after.clock_us - before.clock_us;
  s.read_us = after.read_us - before.read_us;
  s.write_us = after.write_us - before.write_us;
  s.gc_us = after.gc_us - before.gc_us;
  s.meta_us = after.meta_us - before.meta_us;
  s.pid = pid;
  s.valid = true;
  return s;
}

Status TpccDriver::Load(ftl::ShardExecutor* executor) {
  if (executor == nullptr) {
    for (ShardState& sh : shards_) {
      FLASHDB_RETURN_IF_ERROR(sh.workload->Load());
    }
    return Status::OK();
  }
  std::vector<std::future<Status>> futures;
  futures.reserve(shards_.size());
  for (uint32_t s = 0; s < shards_.size(); ++s) {
    futures.push_back(
        executor->Submit(s, [this, s] { return shards_[s].workload->Load(); }));
  }
  Status first;
  for (auto& f : futures) {
    Status st = f.get();
    if (!st.ok() && first.ok()) first = st;
  }
  return first;
}

Status TpccDriver::ExecuteTxn(uint32_t s, TpccTxnType type, uint32_t w,
                              uint32_t client) {
  ShardState& sh = shards_[s];
  flash::FlashDevice* dev = store_->shard_device(s);
  const CostSnap before = SnapCost(dev);
  Status st = sh.workload->RunTransactionOfType(type, w);
  if (st.ok() && opts_.flush_every_txn) st = sh.pool->FlushAll();
  if (!st.ok()) return st;
  const WorstOpSample cost = CostSince(before, dev, w);
  if (dev->trace() != nullptr) {
    dev->trace()->Emit(obs::TraceCat::kTxnSpan, before.clock_us, cost.total_us,
                       w, static_cast<uint64_t>(type), client);
  }
  TpccTypeStats& acc = sh.acc[static_cast<size_t>(type)];
  acc.count++;
  acc.latency.Record(cost.total_us);
  acc.worst_op.Offer(cost);
  return Status::OK();
}

TpccDriver::Draw TpccDriver::DrawNext(uint64_t txn_index) {
  Draw d;
  d.client = static_cast<uint32_t>(txn_index % opts_.num_clients);
  Random& rng = client_rngs_[d.client];
  const uint32_t route = static_cast<uint32_t>(rng.Uniform(100));
  if (static_cast<double>(route) < opts_.hot_warehouse_pct) {
    d.warehouse = 1;  // the hotspot, hosted on shard 0
  } else if (static_cast<double>(route) <
             opts_.hot_warehouse_pct + opts_.remote_pct) {
    d.warehouse =
        1 + static_cast<uint32_t>(rng.Uniform(opts_.scale.warehouses));
  } else {
    d.warehouse = home_warehouse(d.client);
  }
  d.type = TpccWorkload::PickTxnType(&rng);
  return d;
}

void TpccDriver::ResetAccumulators() {
  for (ShardState& sh : shards_) {
    for (TpccTypeStats& acc : sh.acc) {
      acc.count = 0;
      acc.latency.Reset();
      acc.worst_op = WorstOpSample{};
    }
  }
  credit_wait_ns_ = 0;
}

void TpccDriver::FoldStats(const std::vector<uint64_t>& clocks_before,
                           TpccRunStats* out) {
  if (out == nullptr) return;
  const std::vector<uint64_t> clocks_after = store_->shard_clocks();
  uint64_t elapsed = 0;
  uint64_t work = 0;
  for (size_t s = 0; s < clocks_after.size(); ++s) {
    const uint64_t delta = clocks_after[s] - clocks_before[s];
    elapsed = std::max(elapsed, delta);
    work += delta;
  }
  out->elapsed_vt_us += elapsed;
  out->total_work_us += work;
  out->credit_wait_ns += credit_wait_ns_;
  // Shard-index fold order: Merge is commutative and Offer order-stable, so
  // this equals the sequential replay's fold no matter how the concurrent
  // run interleaved.
  for (ShardState& sh : shards_) {
    for (uint32_t t = 0; t < kNumTpccTxnTypes; ++t) {
      const TpccTypeStats& acc = sh.acc[t];
      out->by_type[t].count += acc.count;
      out->by_type[t].latency.Merge(acc.latency);
      out->by_type[t].worst_op.Offer(acc.worst_op);
      out->latency.Merge(acc.latency);
      out->worst_op.Offer(acc.worst_op);
      out->transactions += acc.count;
    }
  }
}

Status TpccDriver::ServeInline(uint64_t num_txns) {
  if (opts_.legacy_single_stream) {
    if (store_->num_shards() != 1 || opts_.num_clients != 1) {
      return Status::InvalidArgument(
          "legacy_single_stream requires 1 shard and 1 client");
    }
    ShardState& sh = shards_[0];
    flash::FlashDevice* dev = store_->shard_device(0);
    for (uint64_t i = 0; i < num_txns; ++i) {
      const CostSnap before = SnapCost(dev);
      TpccTxnType type;
      uint32_t w;
      Status st = sh.workload->RunTransactionDrawing(&type, &w);
      if (st.ok() && opts_.flush_every_txn) st = sh.pool->FlushAll();
      FLASHDB_RETURN_IF_ERROR(st);
      const WorstOpSample cost = CostSince(before, dev, w);
      if (dev->trace() != nullptr) {
        dev->trace()->Emit(obs::TraceCat::kTxnSpan, before.clock_us,
                           cost.total_us, w, static_cast<uint64_t>(type), 0);
      }
      TpccTypeStats& acc = sh.acc[static_cast<size_t>(type)];
      acc.count++;
      acc.latency.Record(cost.total_us);
      acc.worst_op.Offer(cost);
      commit_log_.push_back(TpccCommit{0, w, type});
    }
    return Status::OK();
  }
  for (uint64_t i = 0; i < num_txns; ++i) {
    const Draw d = DrawNext(i);
    FLASHDB_RETURN_IF_ERROR(ExecuteTxn(shard_of_warehouse(d.warehouse), d.type,
                                       d.warehouse, d.client));
    commit_log_.push_back(TpccCommit{d.client, d.warehouse, d.type});
  }
  return Status::OK();
}

Status TpccDriver::ServeConcurrent(uint64_t num_txns,
                                   ftl::ShardExecutor* executor) {
  const uint32_t n = store_->num_shards();
  const uint32_t max_inflight = std::max(1u, opts_.max_inflight_per_shard);

  // Credit accounting shared between this thread and the workers'
  // completion callbacks -- the same Dekker-style park/wake handshake as
  // UpdateDriver::RunPipelinedChunk, with the commit-log append folded into
  // the completion under the mutex (the log *is* the commit order).
  struct Control {
    std::vector<std::atomic<uint32_t>> inflight;
    std::atomic<bool> producer_waiting{false};
    std::atomic<bool> has_error{false};
    std::mutex mu;  // guards first_error + the commit log; wake-up serialize
    std::condition_variable cv;
    Status first_error;
    TpccCommitLog* log = nullptr;

    explicit Control(uint32_t shards) : inflight(shards) {}

    void OnComplete(uint32_t shard, const TpccCommit& commit,
                    const Status& st) {
      {
        std::lock_guard<std::mutex> lock(mu);
        if (st.ok()) {
          log->push_back(commit);
        } else {
          if (first_error.ok()) first_error = st;
          has_error.store(true, std::memory_order_release);
        }
      }
      inflight[shard].fetch_sub(1, std::memory_order_release);
      std::atomic_thread_fence(std::memory_order_seq_cst);
      if (producer_waiting.load(std::memory_order_relaxed)) {
        std::lock_guard<std::mutex> lock(mu);
        cv.notify_one();
      }
    }

    void WaitFor(const std::function<bool()>& ready) {
      std::unique_lock<std::mutex> lock(mu);
      producer_waiting.store(true, std::memory_order_relaxed);
      std::atomic_thread_fence(std::memory_order_seq_cst);
      cv.wait(lock, ready);
      producer_waiting.store(false, std::memory_order_relaxed);
    }
  } ctl(n);
  ctl.log = &commit_log_;

  for (uint64_t i = 0; i < num_txns; ++i) {
    if (ctl.has_error.load(std::memory_order_acquire)) break;
    // Transactions must submit in global draw order -- per-shard submission
    // order is what the determinism contract pins down -- so when the
    // target shard is out of credits the producer parks rather than
    // reordering around it.
    const Draw d = DrawNext(i);
    const uint32_t s = shard_of_warehouse(d.warehouse);
    if (ctl.inflight[s].load(std::memory_order_acquire) >= max_inflight) {
      const auto park_start = std::chrono::steady_clock::now();
      ctl.WaitFor([&] {
        return ctl.has_error.load(std::memory_order_acquire) ||
               ctl.inflight[s].load(std::memory_order_acquire) < max_inflight;
      });
      const uint64_t waited_ns = static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - park_start)
              .count());
      credit_wait_ns_ += waited_ns;
      if (wall_trace_ != nullptr) {
        wall_trace_->Emit(obs::TraceCat::kCreditWait,
                          (credit_wait_ns_ - waited_ns) / 1000,
                          waited_ns / 1000, s, waited_ns);
      }
      if (ctl.has_error.load(std::memory_order_acquire)) break;
    }
    ctl.inflight[s].fetch_add(1, std::memory_order_relaxed);
    const TpccCommit commit{d.client, d.warehouse, d.type};
    const Status submitted = executor->SubmitWithCallback(
        s, [this, s, d] { return ExecuteTxn(s, d.type, d.warehouse, d.client); },
        [&ctl, s, commit](const Status& st) { ctl.OnComplete(s, commit, st); });
    if (!submitted.ok()) {
      // Nothing enqueued, the callback never runs: hand the credit back.
      ctl.inflight[s].fetch_sub(1, std::memory_order_relaxed);
      std::lock_guard<std::mutex> lock(ctl.mu);
      if (ctl.first_error.ok()) ctl.first_error = submitted;
      ctl.has_error.store(true, std::memory_order_release);
      break;
    }
  }

  // Drain on the *executor's* counters, not the credits: `completed` only
  // increments after a completion callback has fully returned, so equality
  // proves no worker can touch ctl (or a shard's pool) again. The acquire
  // loads also publish the workers' device mutations to this thread before
  // FoldStats snapshots the clocks.
  for (uint32_t i = 0; i < n; ++i) {
    while (executor->completed_count(i) != executor->submitted_count(i)) {
      std::this_thread::yield();
    }
  }
  return ctl.first_error;
}

Status TpccDriver::Serve(uint64_t num_txns, ftl::ShardExecutor* executor,
                         TpccRunStats* out) {
  commit_log_.clear();
  commit_log_.reserve(num_txns);
  ResetAccumulators();
  const std::vector<uint64_t> clocks_before = store_->shard_clocks();
  Status st;
  if (executor == nullptr || opts_.legacy_single_stream) {
    st = ServeInline(num_txns);
  } else {
    if (executor->num_workers() < store_->num_shards()) {
      return Status::InvalidArgument("executor has fewer workers than shards");
    }
    st = ServeConcurrent(num_txns, executor);
  }
  FoldStats(clocks_before, out);
  return st;
}

Status TpccDriver::Replay(const TpccCommitLog& log, TpccRunStats* out) {
  ResetAccumulators();
  const std::vector<uint64_t> clocks_before = store_->shard_clocks();
  Status st;
  for (const TpccCommit& c : log) {
    st = ExecuteTxn(shard_of_warehouse(c.warehouse), c.type, c.warehouse,
                    c.client);
    if (!st.ok()) break;
  }
  FoldStats(clocks_before, out);
  return st;
}

Status TpccDriver::FlushAll() {
  for (ShardState& sh : shards_) {
    FLASHDB_RETURN_IF_ERROR(sh.pool->FlushAll());
  }
  return Status::OK();
}

}  // namespace flashdb::workload
